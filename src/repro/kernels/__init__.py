"""The kernel registry — a compiled tier for the hottest columnar loops.

The columnar plane (PRs 3–6) vectorized every protocol, but four loops
still dominate profiles: the SWOR coordinator fold (threshold mask +
top-``s`` merge), the SWR per-sampler min fold, the sliding-window
dominator count, and the site-side level computation / early-regular
split.  This package puts those four behind a *backend seam* mirroring
the engine registry:

* ``"numpy"`` — :mod:`repro.kernels.numpy_backend`, the always-available
  vectorized implementations (the exact logic that used to live inline);
* ``"numba"`` — :mod:`repro.kernels.numba_backend`, fused
  ``@njit(cache=True)`` loop kernels, offered only when numba imports;
* ``"auto"`` — numba when available, else numpy (the default, also the
  default of the ``REPRO_KERNELS`` environment variable).

The acceptance bar is the one every fast path since PR 3 has carried:
**bit-identical samples and message counters** regardless of backend.
Kernels therefore never draw randomness and never mutate protocol
state — they are pure column transforms whose outputs (floats, counts,
index sets) are defined to be backend-independent; the parity suite in
``tests/test_kernels.py`` pins this on adversarial fixtures.

Selection
---------
:func:`active` resolves the process default lazily: an explicit
:func:`set_default_kernels` wins, else ``REPRO_KERNELS``, else
``"auto"``.  Engines with a ``kernels=`` override scope it to the run
via :func:`use_kernels`.  Requesting ``"numba"`` explicitly when numba
is missing raises :class:`~repro.common.errors.ConfigurationError`;
``"auto"`` (and an env-var request) falls back to numpy silently — the
same graceful-degradation discipline as the numpy-free scalar paths.

Instrumentation
---------------
Every kernel call is counted and timed into a process-local stats table
(:func:`kernel_stats`), and — when an engine attaches a live
:class:`~repro.obs.MetricsRegistry` — exported as
``repro_kernel_calls_total{kernel,backend}`` /
``repro_kernel_seconds{kernel,backend}`` plus a
``repro_kernel_backend_info{backend}`` selection gauge.  Observational
only, like all of :mod:`repro.obs`.
"""

from __future__ import annotations

import os
import time
import warnings
from contextlib import contextmanager
from types import ModuleType
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from ..common.errors import ConfigurationError
from . import numba_backend, numpy_backend

__all__ = [
    "KERNEL_NAMES",
    "KERNEL_BACKENDS",
    "KernelBackend",
    "active",
    "available_backends",
    "get_kernels",
    "kernel_stats",
    "python_mirror_backend",
    "reset_default_kernels",
    "reset_kernel_stats",
    "set_default_kernels",
    "set_kernel_registry",
    "use_kernels",
]

#: The kernel seam: every backend module defines exactly these.
KERNEL_NAMES = (
    "swor_fold_regulars",
    "merge_cut",
    "swr_min_fold",
    "window_dominators",
    "compute_levels",
    "window_split",
)

#: name -> backend module, mirroring ``repro.runtime.ENGINES``.
KERNEL_BACKENDS = {
    "numpy": numpy_backend,
    "numba": numba_backend,
}

#: Environment variable consulted when no explicit default is set.
ENV_VAR = "REPRO_KERNELS"

# -- per-(kernel, backend) accounting -----------------------------------

_stats: Dict[Tuple[str, str], List[float]] = {}
_registry: Optional[Any] = None
_calls_family: Optional[Any] = None
_seconds_family: Optional[Any] = None


def kernel_stats() -> Dict[Tuple[str, str], Tuple[int, float]]:
    """``{(kernel, backend): (calls, seconds)}`` accumulated since the
    last :func:`reset_kernel_stats` — always on (no registry needed)."""
    return {k: (int(v[0]), v[1]) for k, v in _stats.items() if v[0]}


def reset_kernel_stats() -> None:
    # Zero in place: the instrumented closures hold the cell lists.
    for cell in _stats.values():
        cell[0] = 0
        cell[1] = 0.0


def set_kernel_registry(registry: Optional[Any]) -> None:
    """Attach (or detach, with ``None``/disabled) the live metrics
    registry kernel calls export to.  Called by
    :meth:`repro.runtime.base.Engine.instrument`; last attach wins
    (kernel selection is process-global, so is its telemetry)."""
    # reprolint: disable=R002 registry attachment is telemetry plumbing, not kernel math
    global _registry, _calls_family, _seconds_family
    if registry is None or not getattr(registry, "enabled", False):
        _registry = _calls_family = _seconds_family = None
        return
    _registry = registry
    _calls_family = registry.counter(
        "repro_kernel_calls_total",
        "kernel-tier calls by kernel and backend",
        labels=("kernel", "backend"),
    )
    _seconds_family = registry.histogram(
        "repro_kernel_seconds",
        "wall-clock duration of kernel-tier calls",
        labels=("kernel", "backend"),
    )
    registry.gauge(
        "repro_kernel_backend_info",
        "1 for the kernel backend selected by the process default",
        labels=("backend",),
    ).labels(backend=active().name).set(1)


class KernelBackend:
    """One resolved backend: the six kernels, instrumented.

    Attribute access is pre-bound at construction (``backend.merge_cut``
    is a closure, not a dict lookup), so per-call overhead is one
    ``perf_counter`` pair plus a list update.
    """

    __slots__ = ("name",) + KERNEL_NAMES

    name: str
    swor_fold_regulars: Callable[..., Any]
    merge_cut: Callable[..., Any]
    swr_min_fold: Callable[..., Any]
    window_dominators: Callable[..., Any]
    compute_levels: Callable[..., Any]
    window_split: Callable[..., Any]

    def __init__(self, name: str, module: ModuleType) -> None:
        self.name = name
        for kernel_name in KERNEL_NAMES:
            setattr(
                self,
                kernel_name,
                _timed(kernel_name, name, getattr(module, kernel_name)),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelBackend({self.name!r})"


def _timed(
    kernel_name: str, backend_name: str, fn: Callable[..., Any]
) -> Callable[..., Any]:
    cell = _stats.setdefault((kernel_name, backend_name), [0, 0.0])
    # reprolint: disable=R002 wall-clock here only times the call for obs; kernel outputs never see it
    perf_counter = time.perf_counter

    def call(*args: Any) -> Any:
        t0 = perf_counter()
        out = fn(*args)
        dt = perf_counter() - t0
        cell[0] += 1
        cell[1] += dt
        if _registry is not None:
            _calls_family.labels(kernel=kernel_name, backend=backend_name).inc()
            _seconds_family.labels(
                kernel=kernel_name, backend=backend_name
            ).observe(dt)
        return out

    call.__name__ = f"{backend_name}:{kernel_name}"
    return call


# -- selection ----------------------------------------------------------

_backends: Dict[str, KernelBackend] = {}
_default: Optional[KernelBackend] = None


def available_backends() -> Dict[str, bool]:
    """``{name: importable}`` for every registered backend."""
    return {
        name: bool(getattr(module, "AVAILABLE", False))
        for name, module in KERNEL_BACKENDS.items()
    }


def _backend(name: str) -> KernelBackend:
    backend = _backends.get(name)
    if backend is None:
        backend = _backends[name] = KernelBackend(name, KERNEL_BACKENDS[name])
    return backend


def get_kernels(
    spec: Union[str, "KernelBackend", None] = None, strict: bool = True
) -> "KernelBackend":
    """Resolve a kernel-backend spec, mirroring ``get_engine``.

    ``spec`` may be a :class:`KernelBackend` (returned as-is), a name
    from :data:`KERNEL_BACKENDS`, ``"auto"``, or ``None`` (= the
    ``REPRO_KERNELS`` environment variable, default ``"auto"``).  With
    ``strict`` (the default for explicit requests) an unavailable or
    unknown backend raises ``ConfigurationError``; ``strict=False``
    (used for env/worker propagation) warns and falls back to auto.
    """
    if isinstance(spec, KernelBackend):
        return spec
    if spec is None:
        spec = os.environ.get(ENV_VAR) or "auto"
        strict = False
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"kernels spec must be a string or KernelBackend, got {spec!r}"
        )
    name = spec.lower()
    if name == "auto":
        return _backend("numba" if numba_backend.AVAILABLE else "numpy")
    if name not in KERNEL_BACKENDS:
        known = ", ".join(sorted(KERNEL_BACKENDS) + ["auto"])
        message = f"unknown kernel backend {spec!r} (known: {known})"
        if strict:
            raise ConfigurationError(message)
        warnings.warn(f"{message}; falling back to auto", stacklevel=2)
        return get_kernels("auto")
    if not getattr(KERNEL_BACKENDS[name], "AVAILABLE", False):
        message = f"kernel backend {spec!r} is not available on this install"
        if name == "numba":
            message += " (pip install 'repro-weighted-reservoir[kernels]')"
        if strict:
            raise ConfigurationError(message)
        warnings.warn(f"{message}; falling back to auto", stacklevel=2)
        return get_kernels("auto")
    return _backend(name)


def active() -> KernelBackend:
    """The process-default backend (resolved lazily on first use)."""
    # reprolint: disable=R002 process-default backend selection is the seam itself, not a kernel
    global _default
    if _default is None:
        _default = get_kernels(None)
    return _default


def set_default_kernels(
    spec: Union[str, KernelBackend, None], strict: bool = True
) -> KernelBackend:
    """Set the process-default backend; returns the resolved backend."""
    # reprolint: disable=R002 process-default backend selection is the seam itself, not a kernel
    global _default
    _default = get_kernels(spec, strict=strict)
    return _default


def reset_default_kernels() -> None:
    """Forget the resolved default so the next :func:`active` re-reads
    ``REPRO_KERNELS`` (test hook)."""
    # reprolint: disable=R002 process-default backend selection is the seam itself, not a kernel
    global _default
    _default = None


@contextmanager
def use_kernels(
    spec: Union[str, KernelBackend, None]
) -> Iterator[KernelBackend]:
    """Scope the process-default backend to a ``with`` block — how an
    engine's ``kernels=`` override applies for exactly one run.
    ``None`` (no override) is a pass-through that yields the active
    default, so engine code wraps unconditionally."""
    # reprolint: disable=R002 process-default backend selection is the seam itself, not a kernel
    global _default
    if spec is None:
        yield active()
        return
    prev = _default
    _default = get_kernels(spec)
    try:
        yield _default
    finally:
        _default = prev


def python_mirror_backend() -> KernelBackend:
    """The numba backend's loop logic as a backend named ``"python"`` —
    compiled when numba is present, plain Python otherwise.  The parity
    suite uses this to exercise the loop implementations on
    numpy-only installs, where ``"numba"`` itself is unavailable."""
    backend = _backends.get("python")
    if backend is None:
        backend = _backends["python"] = KernelBackend("python", numba_backend)
    return backend

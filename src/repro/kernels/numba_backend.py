"""The compiled kernel backend: numba ``@njit(cache=True)`` loop kernels.

Same call-for-call contract as :mod:`repro.kernels.numpy_backend` —
bit-identical floats, counts, and index orders for the same inputs —
but each kernel is a single fused loop nest instead of a chain of
numpy whole-array passes, so one pack fold costs one C-speed pass with
no intermediate allocations.

Bit-identity notes (why the loop results equal the numpy results):

* order statistics (``merge_cut``'s cut value) are multiset functions —
  an explicit quickselect returns the exact same float ``np.partition``
  selects;
* dominator counts are exact integers — the Fenwick-tree count over
  ``searchsorted`` ranks equals the block-table count;
* level computation starts from a ``log`` estimate but converges via
  ``pow``-comparison correction loops to the unique bracket
  ``r^j <= w < r^{j+1}``, so a last-ulp difference between numpy's and
  libm's ``log`` cannot change the result (``math.pow`` and
  ``np.power`` both call libm ``pow``);
* no kernel draws randomness — RNG order is owned by the callers.

When numba is not importable the module still loads: ``njit`` becomes
an identity decorator and every kernel runs as plain Python over numpy
arrays.  That keeps the exact loop logic testable (and usable, via the
``python_mirror_backend`` helper) on numpy-only installs; the registry
simply never selects ``"numba"`` there.

Like every kernel backend, this module is subject to reprolint's
kernel-purity rule (R002): no RNG, clocks, I/O, or module-global
mutation — ambient state is the only channel through which two
backends could diverge.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Tuple

try:  # the kernel tier only exists on numpy installs; callers gate
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

try:
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False

    def _njit(*args: Any, **kwargs: Any) -> Any:  # identity decorator: kernels run as Python
        if args and callable(args[0]):
            return args[0]

        def _decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
            return fn

        return _decorate


from ..common.errors import ConfigurationError

__all__ = [
    "AVAILABLE",
    "NUMBA_AVAILABLE",
    "swor_fold_regulars",
    "merge_cut",
    "swr_min_fold",
    "window_dominators",
    "compute_levels",
    "window_split",
    "warmup",
]

#: The registry only offers this backend when numba itself is present
#: (the pure-Python fallback loops stay reachable through
#: :func:`repro.kernels.python_mirror_backend` for parity testing).
AVAILABLE = NUMBA_AVAILABLE and _np is not None


def _f64(a: _np.ndarray) -> _np.ndarray:
    return _np.ascontiguousarray(a, dtype=_np.float64)


def _i64(a: _np.ndarray) -> _np.ndarray:
    return _np.ascontiguousarray(a, dtype=_np.int64)


# -- compiled cores (no exceptions, no object mode) ---------------------


@_njit(cache=True)
def _kth_smallest(a: _np.ndarray, k: int) -> float:
    """Exact ``k``-th smallest of ``a`` (0-based) — in-place quickselect
    with median-of-three pivots; ``a`` is scratch and gets permuted."""
    lo = 0
    hi = a.shape[0] - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] < a[lo]:
            a[lo], a[mid] = a[mid], a[lo]
        if a[hi] < a[lo]:
            a[lo], a[hi] = a[hi], a[lo]
        if a[hi] < a[mid]:
            a[mid], a[hi] = a[hi], a[mid]
        pivot = a[mid]
        i = lo
        j = hi
        while i <= j:
            while a[i] < pivot:
                i += 1
            while a[j] > pivot:
                j -= 1
            if i <= j:
                a[i], a[j] = a[j], a[i]
                i += 1
                j -= 1
        if k <= j:
            hi = j
        elif k >= i:
            lo = i
        else:
            return a[k]
    return a[lo]


@_njit(cache=True)
def _merge_cut_core(
    old_keys: _np.ndarray, cand_keys: _np.ndarray, sample_size: int
) -> Tuple[float, int]:
    h = old_keys.shape[0]
    c = cand_keys.shape[0]
    merged = _np.empty(h + c, _np.float64)
    merged[:h] = old_keys
    merged[h:] = cand_keys
    cut = _kth_smallest(merged, h + c - sample_size)
    at_cut = 0
    for t in range(h + c):  # quickselect permutes; the multiset is intact
        if merged[t] == cut:
            at_cut += 1
    return cut, at_cut


@_njit(cache=True)
def _swor_fold_core(
    keys: _np.ndarray, threshold: float, old_keys: _np.ndarray, sample_size: int
) -> Tuple[_np.ndarray, _np.ndarray, float, int]:
    n = keys.shape[0]
    h = old_keys.shape[0]
    surv = _np.empty(n, _np.int64)
    c = 0
    for i in range(n):
        if keys[i] > threshold:
            surv[c] = i
            c += 1
    surv_idx = surv[:c].copy()
    if h + c < sample_size:
        return surv_idx, surv_idx, 0.0, 1
    cand = _np.empty(c, _np.float64)
    for t in range(c):
        cand[t] = keys[surv_idx[t]]
    cut, at_cut = _merge_cut_core(old_keys, cand, sample_size)
    if c <= sample_size - h:
        kept_idx = surv_idx
    else:
        kept = _np.empty(c, _np.int64)
        kc = 0
        for t in range(c):
            if keys[surv_idx[t]] >= cut:
                kept[kc] = surv_idx[t]
                kc += 1
        kept_idx = kept[:kc].copy()
    return surv_idx, kept_idx, cut, at_cut


@_njit(cache=True)
def _swr_min_fold_core(
    samplers: _np.ndarray, keys: _np.ndarray, sample_size: int
) -> _np.ndarray:
    best = _np.full(sample_size, -1, _np.int64)
    n = keys.shape[0]
    for i in range(n):
        sid = samplers[i]
        b = best[sid]
        if b < 0 or keys[i] < keys[b]:  # strict <: earliest arrival wins ties
            best[sid] = i
    heads = _np.empty(sample_size, _np.int64)
    c = 0
    for sid in range(sample_size):
        if best[sid] >= 0:
            heads[c] = best[sid]
            c += 1
    return heads[:c].copy()


@_njit(cache=True)
def _window_dominators_core(keys: _np.ndarray) -> _np.ndarray:
    m = keys.shape[0]
    out = _np.zeros(m, _np.int64)
    if m <= 1:
        return out
    sorted_keys = _np.sort(keys.copy())
    # rank[i] = # keys <= keys[i], in 1..m: monotone with the key order,
    # so "inserted with key <= keys[i]" == "inserted with rank <= rank[i]".
    ranks = _np.searchsorted(sorted_keys, keys, side="right")
    tree = _np.zeros(m + 1, _np.int64)  # Fenwick tree over ranks
    inserted = 0
    for i in range(m - 1, -1, -1):
        r_i = ranks[i]
        acc = 0
        x = r_i
        while x > 0:
            acc += tree[x]
            x -= x & (-x)
        out[i] = inserted - acc  # later arrivals with a strictly larger key
        x = r_i
        while x <= m:
            tree[x] += 1
            x += x & (-x)
        inserted += 1
    return out


@_njit(cache=True)
def _compute_levels_core(weights: _np.ndarray, r: float) -> Tuple[_np.ndarray, int]:
    n = weights.shape[0]
    levels = _np.zeros(n, _np.int64)
    logr = math.log(r)
    for i in range(n):
        w = weights[i]
        if not (w > 0.0) or math.isinf(w):  # catches NaN, <= 0, inf
            return levels, i
        if w < r:
            continue
        j = int(math.log(w) / logr)
        while math.pow(r, j + 1) <= w:
            j += 1
        while j > 0 and math.pow(r, j) > w:
            j -= 1
        levels[i] = j
    return levels, -1


@_njit(cache=True)
def _window_split_core(
    weights: _np.ndarray, r: float, heavy_floor: float, table: _np.ndarray
) -> Tuple[_np.ndarray, _np.ndarray, _np.ndarray, int]:
    n = weights.shape[0]
    levels = _np.zeros(n, _np.int64)
    saturated = _np.ones(n, _np.bool_)
    early = _np.empty(n, _np.int64)
    ec = 0
    tlen = table.shape[0]
    logr = math.log(r)
    for i in range(n):
        w = weights[i]
        if heavy_floor > 0.0 and w < heavy_floor:
            continue  # provably in a saturated level below the floor
        if not (w > 0.0) or math.isinf(w):  # catches NaN, <= 0, inf
            return levels, saturated, early[:0].copy(), i
        if w < r:
            j = 0
        else:
            j = int(math.log(w) / logr)
            while math.pow(r, j + 1) <= w:
                j += 1
            while j > 0 and math.pow(r, j) > w:
                j -= 1
        levels[i] = j
        if j >= tlen or not table[j]:
            saturated[i] = False
            early[ec] = i
            ec += 1
    return levels, saturated, early[:ec].copy(), -1


# -- public kernels (validation + dtype normalization) ------------------


def merge_cut(
    old_keys: _np.ndarray, cand_keys: _np.ndarray, sample_size: int
) -> Tuple[float, int]:
    """See :func:`repro.kernels.numpy_backend.merge_cut`."""
    cut, at_cut = _merge_cut_core(_f64(old_keys), _f64(cand_keys), sample_size)
    return float(cut), int(at_cut)


def swor_fold_regulars(
    keys: _np.ndarray, threshold: float, old_keys: _np.ndarray, sample_size: int
) -> Tuple[_np.ndarray, _np.ndarray, float, int]:
    """See :func:`repro.kernels.numpy_backend.swor_fold_regulars`."""
    surv_idx, kept_idx, cut, at_cut = _swor_fold_core(
        _f64(keys), threshold, _f64(old_keys), sample_size
    )
    return surv_idx, kept_idx, float(cut), int(at_cut)


def swr_min_fold(
    samplers: _np.ndarray, keys: _np.ndarray, sample_size: int
) -> _np.ndarray:
    """See :func:`repro.kernels.numpy_backend.swr_min_fold`."""
    return _swr_min_fold_core(_i64(samplers), _f64(keys), sample_size)


def window_dominators(keys: _np.ndarray) -> _np.ndarray:
    """See :func:`repro.kernels.numpy_backend.window_dominators`."""
    return _window_dominators_core(_f64(keys))


def compute_levels(weights: _np.ndarray, r: float) -> _np.ndarray:
    """See :func:`repro.kernels.numpy_backend.compute_levels`."""
    w = _f64(weights)
    levels, bad = _compute_levels_core(w, r)
    if bad >= 0:
        raise ConfigurationError(
            f"weight must be positive and finite: {float(w[bad])}"
        )
    return levels


def window_split(
    weights: _np.ndarray, r: float, heavy_floor: float, table: _np.ndarray
) -> Tuple[_np.ndarray, _np.ndarray, _np.ndarray]:
    """See :func:`repro.kernels.numpy_backend.window_split`."""
    w = _f64(weights)
    levels, saturated, early_positions, bad = _window_split_core(
        w, r, heavy_floor, _np.ascontiguousarray(table, dtype=_np.bool_)
    )
    if bad >= 0:
        raise ConfigurationError(
            f"weight must be positive and finite: {float(w[bad])}"
        )
    return levels, saturated, early_positions


def warmup() -> None:
    """Force-compile every kernel on tiny inputs (a no-op without
    numba).  Benchmarks call this so steady-state timings exclude the
    first-call JIT cost; ``cache=True`` makes the cost once-per-machine
    rather than once-per-process."""
    keys = _np.array([3.0, 1.0, 2.0], dtype=_np.float64)
    old = _np.array([0.5], dtype=_np.float64)
    merge_cut(old, keys, 2)
    swor_fold_regulars(keys, 0.5, old, 2)
    swr_min_fold(_np.array([0, 1, 0], dtype=_np.int64), keys, 2)
    window_dominators(keys)
    compute_levels(keys, 2.0)
    window_split(
        keys, 2.0, 0.0, _np.array([False, True], dtype=_np.bool_)
    )

"""Synthetic domain datasets for the example applications.

The paper motivates distributed sampling with two applications
(Section 1): a search engine sampling queries across servers, and
network monitoring devices sampling flow records.  Real traces of
either kind are proprietary; these builders synthesize streams with the
same documented statistical shape (Zipfian query popularity, Pareto
flow sizes) so the examples exercise identical code paths.  The
substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple

from ..common.errors import ConfigurationError
from .item import Item

__all__ = ["QueryRecord", "FlowRecord", "search_query_log", "network_flow_trace"]


class QueryRecord(NamedTuple):
    """A search query observed at one frontend server."""

    query_id: int
    server: int
    cost: float  # processing cost, used as the sampling weight


class FlowRecord(NamedTuple):
    """A network flow observed at one monitoring device."""

    flow_id: int
    device: int
    bytes: float  # flow size in bytes, used as the sampling weight


def search_query_log(
    num_queries: int,
    num_servers: int,
    rng: random.Random,
    vocabulary: int = 5000,
    zipf_alpha: float = 1.2,
) -> List[QueryRecord]:
    """Synthesize a query log with Zipfian query popularity.

    Query ids are drawn from a Zipf(``zipf_alpha``) popularity law over
    a ``vocabulary``; each query carries a processing cost of at least 1
    (heavier for rarer, longer-tail queries, as is typical).
    """
    if num_queries <= 0 or num_servers <= 0:
        raise ConfigurationError("num_queries and num_servers must be positive")
    # Precompute Zipf CDF over the vocabulary.
    ranks = [1.0 / (i + 1) ** zipf_alpha for i in range(vocabulary)]
    total = sum(ranks)
    cdf = []
    acc = 0.0
    for r in ranks:
        acc += r / total
        cdf.append(acc)
    records = []
    for _ in range(num_queries):
        u = rng.random()
        lo, hi = 0, vocabulary - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        qid = lo
        cost = 1.0 + rng.expovariate(1.0) * (1.0 + qid / vocabulary * 4.0)
        records.append(QueryRecord(qid, rng.randrange(num_servers), cost))
    return records


def network_flow_trace(
    num_flows: int,
    num_devices: int,
    rng: random.Random,
    pareto_shape: float = 1.2,
    mean_packet: float = 800.0,
) -> List[FlowRecord]:
    """Synthesize a flow trace with Pareto-distributed flow sizes.

    Flow sizes follow the heavy-tailed ("elephants and mice") law
    observed in real traffic; a few elephant flows carry most bytes —
    exactly the regime where residual heavy hitters are informative.
    """
    if num_flows <= 0 or num_devices <= 0:
        raise ConfigurationError("num_flows and num_devices must be positive")
    records = []
    for fid in range(num_flows):
        u = rng.random()
        while u <= 0.0:
            u = rng.random()
        size = mean_packet * u ** (-1.0 / pareto_shape)
        records.append(FlowRecord(fid, rng.randrange(num_devices), max(1.0, size)))
    return records


def queries_to_stream(records: List[QueryRecord]) -> List[Item]:
    """Convert query records to weighted items (weight = cost)."""
    return [Item(r.query_id, r.cost) for r in records]


def flows_to_stream(records: List[FlowRecord]) -> List[Item]:
    """Convert flow records to weighted items (weight = bytes)."""
    return [Item(r.flow_id, r.bytes) for r in records]

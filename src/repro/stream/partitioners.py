"""Site-assignment strategies (the adversary of Section 2.1).

The model lets an adversary decide which site observes each item.  A
correct protocol must work for every assignment, so tests and benchmarks
sweep several: round-robin (the lower-bound constructions), uniform
random, contiguous blocks (one site sees a long prefix), weight-sorted
(all heavy items at one site), and single-site (degenerates to the
centralized problem).
"""

from __future__ import annotations

import random
from typing import Sequence

from ..common.errors import ConfigurationError
from .item import DistributedStream, Item

__all__ = [
    "round_robin",
    "uniform_random",
    "contiguous_blocks",
    "heavy_to_one_site",
    "single_site",
    "PARTITIONERS",
]


def _check_k(k: int) -> None:
    if k <= 0:
        raise ConfigurationError(f"number of sites must be positive, got {k}")


def round_robin(items: Sequence[Item], k: int) -> DistributedStream:
    """Item ``j`` goes to site ``j mod k`` (lower-bound constructions)."""
    _check_k(k)
    return DistributedStream(items, [j % k for j in range(len(items))], k)


def uniform_random(
    items: Sequence[Item], k: int, rng: random.Random
) -> DistributedStream:
    """Each item is assigned to an independently uniform site."""
    _check_k(k)
    return DistributedStream(items, [rng.randrange(k) for _ in items], k)


def contiguous_blocks(items: Sequence[Item], k: int) -> DistributedStream:
    """The stream is cut into ``k`` contiguous blocks, one per site.

    Site 0 sees the whole prefix before site 1 sees anything — the
    assignment that maximally desynchronizes local views.
    """
    _check_k(k)
    n = len(items)
    block = max(1, (n + k - 1) // k)
    return DistributedStream(items, [min(j // block, k - 1) for j in range(n)], k)


def heavy_to_one_site(items: Sequence[Item], k: int) -> DistributedStream:
    """All items above the median weight go to site 0, the rest spread
    round-robin over the other sites (or site 0 too when k == 1).

    Stresses the case where one site alone observes every heavy hitter.
    """
    _check_k(k)
    weights = sorted(item.weight for item in items)
    median = weights[len(weights) // 2]
    assignment = []
    light_counter = 0
    for item in items:
        if item.weight > median or k == 1:
            assignment.append(0)
        else:
            assignment.append(1 + light_counter % (k - 1))
            light_counter += 1
    return DistributedStream(items, assignment, k)


def single_site(items: Sequence[Item]) -> DistributedStream:
    """Everything at one site — the centralized special case."""
    return DistributedStream(items, [0] * len(items), 1)


#: Named partitioners with a uniform ``(items, k, rng)`` call signature,
#: for sweeping in tests and benchmarks.
PARTITIONERS = {
    "round_robin": lambda items, k, rng: round_robin(items, k),
    "uniform_random": uniform_random,
    "contiguous_blocks": lambda items, k, rng: contiguous_blocks(items, k),
    "heavy_to_one_site": lambda items, k, rng: heavy_to_one_site(items, k),
}

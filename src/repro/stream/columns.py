"""Columnar (structure-of-arrays) streams — the zero-object substrate.

:class:`~repro.stream.item.DistributedStream` stores one ``Item``
NamedTuple per arrival; at million-item scale the Python objects cost
~5x the memory of the raw values and force every consumer through
per-object interpreter dispatch.  :class:`ColumnarStream` stores the
same global order as three parallel numpy columns —

* ``idents``  (int64)   — the item identifiers ``e``;
* ``weights`` (float64) — the positive weights ``w``;
* ``sites``   (int64)   — the per-arrival site assignment;
* ``timestamps`` (float64, optional) — non-decreasing per-arrival
  timestamps, consumed by the sliding-window columnar path;

— and materializes :class:`~repro.stream.item.Item` objects *lazily*,
only for the (few) arrivals that actually enter a sample, a level set,
or a trace.  Streams are built either by converting an existing
``DistributedStream`` (:meth:`ColumnarStream.from_distributed`) or by
**chunked generation** (:meth:`ColumnarStream.generate`,
:func:`columnar_zipf_stream`): the columns are filled window by window,
so no intermediate ``Item`` list ever exists — construction peaks at
24 bytes/item plus one chunk, versus the 100+ bytes/item of a
materialized ``Item`` list.

A ``ColumnarStream`` is duck-compatible with the engine-facing surface
of ``DistributedStream`` (``len`` / ``num_sites`` / ``arrays()`` /
``assignment`` / ``items`` / ``iter_batches`` / iteration), where
``items`` is a lazy sequence view, so every runtime engine — not just
:class:`~repro.runtime.columnar.ColumnarEngine` — can replay one.

This module requires numpy; on numpy-free installs it is importable but
every constructor raises :class:`~repro.common.errors.ConfigurationError`
(use ``DistributedStream``, whose engines have scalar fallbacks).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

try:  # the whole point of this module is the numpy-backed layout
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError
from .item import DistributedStream, Item

__all__ = ["ColumnarStream", "ItemColumnView", "columnar_zipf_stream"]

#: Default generation chunk: 64k arrivals (~1.5 MB of column data).
DEFAULT_CHUNK_SIZE = 65536


def _require_numpy() -> None:
    if _np is None:
        raise ConfigurationError(
            "ColumnarStream requires numpy; use DistributedStream (and the "
            "engines' scalar fallbacks) on numpy-free installs"
        )


class ItemColumnView(Sequence):
    """A lazy ``Sequence[Item]`` over a stream's columns.

    Supports integer indexing (negative included) and slices; an
    ``Item`` is constructed only at access time, never stored.  This is
    what lets the batched engine's ``stream.items`` lookups work on a
    :class:`ColumnarStream` without materializing the stream.
    """

    __slots__ = ("_idents", "_weights")

    def __init__(self, idents, weights) -> None:
        self._idents = idents
        self._weights = weights

    def __len__(self) -> int:
        return len(self._idents)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                Item(int(e), float(w))
                for e, w in zip(self._idents[index], self._weights[index])
            ]
        return Item(int(self._idents[index]), float(self._weights[index]))

    def __iter__(self) -> Iterator[Item]:
        idents = self._idents
        weights = self._weights
        return (Item(int(idents[i]), float(weights[i])) for i in range(len(idents)))


class ColumnarStream:
    """A globally-ordered distributed stream as three numpy columns.

    Parameters
    ----------
    idents / weights / sites:
        Parallel arrays in global arrival order (coerced to
        int64/float64/int64).
    num_sites:
        The number of sites ``k``; every entry of ``sites`` must lie in
        ``0..k-1``.
    timestamps:
        Optional parallel float64 column of per-arrival timestamps,
        **non-decreasing** in arrival order (a timestamp suffix is then
        an arrival-order suffix, which is what makes timestamp windows
        exact for the sliding-window sampler — see
        :meth:`repro.extensions.SlidingWindowWeightedSWOR.sample_since`).
        ``None`` (the default) means consumers fall back to arrival
        indices.
    """

    def __init__(
        self, idents, weights, sites, num_sites: int, timestamps=None
    ) -> None:
        _require_numpy()
        idents = _np.ascontiguousarray(idents, dtype=_np.int64)
        weights = _np.ascontiguousarray(weights, dtype=_np.float64)
        sites = _np.ascontiguousarray(sites, dtype=_np.int64)
        if not (len(idents) == len(weights) == len(sites)):
            raise ConfigurationError(
                f"column lengths disagree: {len(idents)} idents, "
                f"{len(weights)} weights, {len(sites)} sites"
            )
        if num_sites <= 0:
            raise ConfigurationError(f"num_sites must be positive, got {num_sites}")
        if len(sites) and ((sites < 0) | (sites >= num_sites)).any():
            bad = int(sites[(sites < 0) | (sites >= num_sites)][0])
            raise ConfigurationError(
                f"site index {bad} out of range for k={num_sites}"
            )
        if timestamps is not None:
            timestamps = _np.ascontiguousarray(timestamps, dtype=_np.float64)
            if len(timestamps) != len(weights):
                raise ConfigurationError(
                    f"column lengths disagree: {len(timestamps)} timestamps, "
                    f"{len(weights)} weights"
                )
            if len(timestamps) > 1 and (_np.diff(timestamps) < 0).any():
                raise ConfigurationError(
                    "timestamps must be non-decreasing in arrival order"
                )
        self.idents = idents
        self.weights = weights
        self.sites = sites
        self.num_sites = num_sites
        self.timestamps = timestamps

    # -- construction --------------------------------------------------

    @classmethod
    def from_distributed(cls, stream: DistributedStream) -> "ColumnarStream":
        """Convert an ``Item``-backed stream (values copied exactly)."""
        _require_numpy()
        assignment, weights, idents = stream.arrays()
        if idents is None:
            raise ConfigurationError(
                "stream has non-integer identifiers; ColumnarStream requires "
                "int64-representable idents"
            )
        return cls(idents, weights, assignment, stream.num_sites)

    @classmethod
    def generate(
        cls,
        n: int,
        num_sites: int,
        fill: Callable[[int, "object", "object", "object"], None],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> "ColumnarStream":
        """Build a stream by filling columns one chunk at a time.

        ``fill(lo, idents, weights, sites)`` receives the global offset
        of the chunk and *views* of the three columns covering
        ``lo : lo+len(idents)``; it must write every entry.  No ``Item``
        (or any other per-arrival object) is ever created, so peak
        memory is the final columns plus whatever the callback
        allocates per chunk.
        """
        _require_numpy()
        if n < 0:
            raise ConfigurationError(f"stream length must be >= 0, got {n}")
        if chunk_size <= 0:
            raise ConfigurationError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        idents = _np.empty(n, dtype=_np.int64)
        weights = _np.empty(n, dtype=_np.float64)
        sites = _np.empty(n, dtype=_np.int64)
        for lo in range(0, n, chunk_size):
            hi = min(lo + chunk_size, n)
            fill(lo, idents[lo:hi], weights[lo:hi], sites[lo:hi])
        return cls(idents, weights, sites, num_sites)

    def to_distributed(self) -> DistributedStream:
        """Materialize an ``Item``-backed :class:`DistributedStream`.

        The inverse of :meth:`from_distributed` — round-trips exactly
        (int64 idents and float64 weights are preserved bit for bit).
        """
        return DistributedStream(
            list(self.items), self.sites.tolist(), self.num_sites
        )

    # -- DistributedStream-compatible surface --------------------------

    def __len__(self) -> int:
        return len(self.weights)

    def __iter__(self) -> Iterator[Tuple[int, Item]]:
        """Yield ``(site, item)`` pairs in global arrival order (lazy)."""
        sites = self.sites
        items = self.items
        return ((int(sites[i]), items[i]) for i in range(len(sites)))

    @property
    def items(self) -> ItemColumnView:
        """Lazy ``Sequence[Item]`` view (no materialization)."""
        return ItemColumnView(self.idents, self.weights)

    @property
    def assignment(self):
        """Per-item site indices, aligned with :attr:`items`."""
        return self.sites

    def arrays(self) -> Tuple:
        """``(assignment, weights, idents)`` — already columnar, so this
        is free (mirrors :meth:`DistributedStream.arrays`)."""
        return self.sites, self.weights, self.idents

    def total_weight(self) -> float:
        """The stream's total weight ``W`` (numpy pairwise summation —
        may differ from ``DistributedStream.total_weight``'s sequential
        sum in the last ulp)."""
        return float(self.weights.sum())

    def prefix_weights(self):
        """``W_t`` for every prefix, as a float64 array (cumulative sum)."""
        return _np.cumsum(self.weights)

    def iter_batches(
        self, batch_size: int
    ) -> Iterator[Tuple[List[int], List[Item]]]:
        """Yield ``(sites, items)`` chunk pairs in global arrival order,
        materializing each chunk's Items transiently (API parity with
        :meth:`DistributedStream.iter_batches`)."""
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive, got {batch_size}"
            )
        items = self.items
        for lo in range(0, len(self), batch_size):
            hi = min(lo + batch_size, len(self))
            yield self.sites[lo:hi].tolist(), items[lo:hi]

    def local_streams(self) -> List[List[Item]]:
        """Items per site, each in arrival order (materializes Items)."""
        per_site: List[List[Item]] = [[] for _ in range(self.num_sites)]
        items = self.items
        for i in range(len(self)):
            per_site[int(self.sites[i])].append(items[i])
        return per_site

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarStream(n={len(self)}, k={self.num_sites}, "
            f"bytes={self.idents.nbytes + self.weights.nbytes + self.sites.nbytes})"
        )


def columnar_zipf_stream(
    n: int,
    num_sites: int,
    seed: Optional[int] = None,
    alpha: float = 1.1,
    max_weight: float = 1e6,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> ColumnarStream:
    """A round-robin Zipf workload generated straight into columns.

    The same bounded power law as :func:`repro.stream.generators.zipf_stream`
    (``w = min(max_weight, U^{-1/alpha})``, clamped to ``>= 1``) with
    distinct identifiers ``0..n-1`` and round-robin site assignment,
    drawn from a numpy PCG64 generator — chunked, so a billion-item
    stream never exists as Python objects.  (Distribution-identical to
    ``zipf_stream`` but *not* draw-for-draw identical: the scalar
    generator consumes ``random.Random``; convert with
    :meth:`ColumnarStream.from_distributed` when bit-parity with an
    Item-backed stream matters.)
    """
    _require_numpy()
    if alpha <= 1.0:
        raise ConfigurationError(f"alpha must exceed 1, got {alpha}")
    gen = _np.random.Generator(_np.random.PCG64(seed))
    exponent = -1.0 / alpha

    def fill(lo, idents, weights, sites):
        m = len(idents)
        u = _np.maximum(gen.random(m), 5e-324)
        _np.minimum(u**exponent, max_weight, out=weights)
        _np.maximum(weights, 1.0, out=weights)
        idents[:] = _np.arange(lo, lo + m)
        sites[:] = idents % num_sites

    return ColumnarStream.generate(n, num_sites, fill, chunk_size=chunk_size)

"""Columnar (structure-of-arrays) streams — the zero-object substrate.

:class:`~repro.stream.item.DistributedStream` stores one ``Item``
NamedTuple per arrival; at million-item scale the Python objects cost
~5x the memory of the raw values and force every consumer through
per-object interpreter dispatch.  :class:`ColumnarStream` stores the
same global order as three parallel numpy columns —

* ``idents``  (int64)   — the item identifiers ``e``;
* ``weights`` (float64) — the positive weights ``w``;
* ``sites``   (int64)   — the per-arrival site assignment;
* ``timestamps`` (float64, optional) — non-decreasing per-arrival
  timestamps, consumed by the sliding-window columnar path;

— and materializes :class:`~repro.stream.item.Item` objects *lazily*,
only for the (few) arrivals that actually enter a sample, a level set,
or a trace.  Streams are built either by converting an existing
``DistributedStream`` (:meth:`ColumnarStream.from_distributed`) or by
**chunked generation** (:meth:`ColumnarStream.generate`,
:func:`columnar_zipf_stream`): the columns are filled window by window,
so no intermediate ``Item`` list ever exists — construction peaks at
24 bytes/item plus one chunk, versus the 100+ bytes/item of a
materialized ``Item`` list.

A ``ColumnarStream`` is duck-compatible with the engine-facing surface
of ``DistributedStream`` (``len`` / ``num_sites`` / ``arrays()`` /
``assignment`` / ``items`` / ``iter_batches`` / iteration), where
``items`` is a lazy sequence view, so every runtime engine — not just
:class:`~repro.runtime.columnar.ColumnarEngine` — can replay one.

This module requires numpy; on numpy-free installs it is importable but
every constructor raises :class:`~repro.common.errors.ConfigurationError`
(use ``DistributedStream``, whose engines have scalar fallbacks).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

try:  # the whole point of this module is the numpy-backed layout
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError
from .item import DistributedStream, Item

__all__ = [
    "ColumnarStream",
    "ItemColumnView",
    "ShardSliceView",
    "columnar_zipf_stream",
]

#: Default generation chunk: 64k arrivals (~1.5 MB of column data).
DEFAULT_CHUNK_SIZE = 65536


def _require_numpy() -> None:
    if _np is None:
        raise ConfigurationError(
            "ColumnarStream requires numpy; use DistributedStream (and the "
            "engines' scalar fallbacks) on numpy-free installs"
        )


class ItemColumnView(Sequence):
    """A lazy ``Sequence[Item]`` over a stream's columns.

    Supports integer indexing (negative included) and slices; an
    ``Item`` is constructed only at access time, never stored.  This is
    what lets the batched engine's ``stream.items`` lookups work on a
    :class:`ColumnarStream` without materializing the stream.
    """

    __slots__ = ("_idents", "_weights")

    def __init__(self, idents, weights) -> None:
        self._idents = idents
        self._weights = weights

    def __len__(self) -> int:
        return len(self._idents)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                Item(int(e), float(w))
                for e, w in zip(self._idents[index], self._weights[index])
            ]
        return Item(int(self._idents[index]), float(self._weights[index]))

    def __iter__(self) -> Iterator[Item]:
        idents = self._idents
        weights = self._weights
        return (Item(int(idents[i]), float(weights[i])) for i in range(len(idents)))


class ShardSliceView:
    """One contiguous site shard's rows of a columnar stream, compacted.

    The multiprocess sharded engine partitions sites into contiguous
    ranges ``[site_lo, site_hi)`` and hands each worker process only its
    shard's arrivals.  A ``ShardSliceView`` holds those rows as four
    parallel columns — ``positions`` (the rows' global arrival indices,
    strictly increasing), ``sites``, ``weights``, and ``idents`` — so a
    worker can answer the two questions the engine's window loop asks
    without ever touching the full stream:

    * :meth:`window_bounds` — which shard rows fall in the global
      window ``[lo, hi)`` (one ``searchsorted`` against ``positions``);
    * :meth:`window_order` — the window's shard rows grouped per site
      with each site's arrivals in **global** order, via the same
      stable argsort as :func:`repro.runtime.batched.window_order`.

    Because ``positions`` is increasing and the argsort is stable, each
    site's per-window ident/weight slices are *bitwise identical* to
    the slices :class:`~repro.runtime.columnar.ColumnarEngine` would
    hand that site — which is what makes shard-parallel site passes
    reproducible down to the RNG draw.  Requires numpy.
    """

    __slots__ = ("positions", "sites", "weights", "idents", "site_lo", "site_hi")

    def __init__(self, positions, sites, weights, idents, site_lo, site_hi):
        _require_numpy()
        if not site_lo <= site_hi:
            raise ConfigurationError(
                f"invalid shard range [{site_lo}, {site_hi})"
            )
        self.positions = _np.ascontiguousarray(positions, dtype=_np.int64)
        self.sites = _np.ascontiguousarray(sites, dtype=_np.int64)
        self.weights = _np.ascontiguousarray(weights, dtype=_np.float64)
        self.idents = _np.ascontiguousarray(idents, dtype=_np.int64)
        if not (
            len(self.positions)
            == len(self.sites)
            == len(self.weights)
            == len(self.idents)
        ):
            raise ConfigurationError("shard column lengths disagree")
        self.site_lo = int(site_lo)
        self.site_hi = int(site_hi)

    @staticmethod
    def shard_range(num_sites: int, num_shards: int, index: int) -> Tuple[int, int]:
        """Contiguous site range ``[lo, hi)`` of shard ``index`` — the
        single partition formula, shared by
        :meth:`ColumnarStream.shard_views` and the sharded engine's
        worker dispatch (so the two can never drift apart)."""
        return (
            index * num_sites // num_shards,
            (index + 1) * num_sites // num_shards,
        )

    @classmethod
    def from_columns(cls, assignment, weights, idents, site_lo, site_hi):
        """Compact the rows of sites ``[site_lo, site_hi)`` out of full
        stream columns (``assignment`` / ``weights`` / ``idents`` in
        global arrival order, as from ``stream.arrays()``)."""
        _require_numpy()
        assignment = _np.asarray(assignment)
        mask = (assignment >= site_lo) & (assignment < site_hi)
        positions = _np.flatnonzero(mask)
        return cls(
            positions,
            assignment[positions],
            _np.asarray(weights)[positions],
            _np.asarray(idents)[positions],
            site_lo,
            site_hi,
        )

    def __len__(self) -> int:
        return len(self.positions)

    def window_bounds(self, lo: int, hi: int) -> Tuple[int, int]:
        """Shard-row bracket ``[i0, i1)`` of global window ``[lo, hi)``."""
        i0, i1 = _np.searchsorted(self.positions, (lo, hi), side="left")
        return int(i0), int(i1)

    def window_order(self, i0: int, i1: int):
        """Per-site grouping of shard rows ``[i0, i1)``.

        Returns ``(site_ids, run_starts, run_ends, idents_sorted,
        weights_sorted)`` where ``[run_starts[j], run_ends[j])``
        brackets site ``site_ids[j]``'s slice of the two sorted columns
        — ascending site ids, each site's arrivals in global order
        (the exact slices the columnar engine would gather).
        """
        from ..runtime.batched import window_order

        order, sites_sorted, run_starts, run_ends = window_order(
            self.sites[i0:i1]
        )
        gather = order + i0
        return (
            sites_sorted[run_starts].tolist(),
            run_starts.tolist(),
            run_ends.tolist(),
            self.idents[gather],
            self.weights[gather],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardSliceView(sites=[{self.site_lo}, {self.site_hi}), "
            f"rows={len(self)})"
        )


class ColumnarStream:
    """A globally-ordered distributed stream as three numpy columns.

    Parameters
    ----------
    idents / weights / sites:
        Parallel arrays in global arrival order (coerced to
        int64/float64/int64).
    num_sites:
        The number of sites ``k``; every entry of ``sites`` must lie in
        ``0..k-1``.
    timestamps:
        Optional parallel float64 column of per-arrival timestamps,
        **non-decreasing** in arrival order (a timestamp suffix is then
        an arrival-order suffix, which is what makes timestamp windows
        exact for the sliding-window sampler — see
        :meth:`repro.extensions.SlidingWindowWeightedSWOR.sample_since`).
        ``None`` (the default) means consumers fall back to arrival
        indices.
    """

    def __init__(
        self, idents, weights, sites, num_sites: int, timestamps=None
    ) -> None:
        _require_numpy()
        idents = _np.ascontiguousarray(idents, dtype=_np.int64)
        weights = _np.ascontiguousarray(weights, dtype=_np.float64)
        sites = _np.ascontiguousarray(sites, dtype=_np.int64)
        if not (len(idents) == len(weights) == len(sites)):
            raise ConfigurationError(
                f"column lengths disagree: {len(idents)} idents, "
                f"{len(weights)} weights, {len(sites)} sites"
            )
        if num_sites <= 0:
            raise ConfigurationError(f"num_sites must be positive, got {num_sites}")
        if len(sites) and ((sites < 0) | (sites >= num_sites)).any():
            bad = int(sites[(sites < 0) | (sites >= num_sites)][0])
            raise ConfigurationError(
                f"site index {bad} out of range for k={num_sites}"
            )
        if timestamps is not None:
            timestamps = _np.ascontiguousarray(timestamps, dtype=_np.float64)
            if len(timestamps) != len(weights):
                raise ConfigurationError(
                    f"column lengths disagree: {len(timestamps)} timestamps, "
                    f"{len(weights)} weights"
                )
            if len(timestamps) > 1 and (_np.diff(timestamps) < 0).any():
                raise ConfigurationError(
                    "timestamps must be non-decreasing in arrival order"
                )
        self.idents = idents
        self.weights = weights
        self.sites = sites
        self.num_sites = num_sites
        self.timestamps = timestamps

    # -- construction --------------------------------------------------

    @classmethod
    def from_distributed(cls, stream: DistributedStream) -> "ColumnarStream":
        """Convert an ``Item``-backed stream (values copied exactly)."""
        _require_numpy()
        assignment, weights, idents = stream.arrays()
        if idents is None:
            raise ConfigurationError(
                "stream has non-integer identifiers; ColumnarStream requires "
                "int64-representable idents"
            )
        return cls(idents, weights, assignment, stream.num_sites)

    @classmethod
    def generate(
        cls,
        n: int,
        num_sites: int,
        fill: Callable[[int, "object", "object", "object"], None],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> "ColumnarStream":
        """Build a stream by filling columns one chunk at a time.

        ``fill(lo, idents, weights, sites)`` receives the global offset
        of the chunk and *views* of the three columns covering
        ``lo : lo+len(idents)``; it must write every entry.  No ``Item``
        (or any other per-arrival object) is ever created, so peak
        memory is the final columns plus whatever the callback
        allocates per chunk.
        """
        _require_numpy()
        if n < 0:
            raise ConfigurationError(f"stream length must be >= 0, got {n}")
        if chunk_size <= 0:
            raise ConfigurationError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        idents = _np.empty(n, dtype=_np.int64)
        weights = _np.empty(n, dtype=_np.float64)
        sites = _np.empty(n, dtype=_np.int64)
        for lo in range(0, n, chunk_size):
            hi = min(lo + chunk_size, n)
            fill(lo, idents[lo:hi], weights[lo:hi], sites[lo:hi])
        return cls(idents, weights, sites, num_sites)

    def to_distributed(self) -> DistributedStream:
        """Materialize an ``Item``-backed :class:`DistributedStream`.

        The inverse of :meth:`from_distributed` — round-trips exactly
        (int64 idents and float64 weights are preserved bit for bit).
        """
        return DistributedStream(
            list(self.items), self.sites.tolist(), self.num_sites
        )

    # -- DistributedStream-compatible surface --------------------------

    def __len__(self) -> int:
        return len(self.weights)

    def __iter__(self) -> Iterator[Tuple[int, Item]]:
        """Yield ``(site, item)`` pairs in global arrival order (lazy)."""
        sites = self.sites
        items = self.items
        return ((int(sites[i]), items[i]) for i in range(len(sites)))

    @property
    def items(self) -> ItemColumnView:
        """Lazy ``Sequence[Item]`` view (no materialization)."""
        return ItemColumnView(self.idents, self.weights)

    @property
    def assignment(self):
        """Per-item site indices, aligned with :attr:`items`."""
        return self.sites

    def arrays(self) -> Tuple:
        """``(assignment, weights, idents)`` — already columnar, so this
        is free (mirrors :meth:`DistributedStream.arrays`)."""
        return self.sites, self.weights, self.idents

    def total_weight(self) -> float:
        """The stream's total weight ``W`` (numpy pairwise summation —
        may differ from ``DistributedStream.total_weight``'s sequential
        sum in the last ulp)."""
        return float(self.weights.sum())

    def prefix_weights(self):
        """``W_t`` for every prefix, as a float64 array (cumulative sum)."""
        return _np.cumsum(self.weights)

    def iter_batches(
        self, batch_size: int
    ) -> Iterator[Tuple[List[int], List[Item]]]:
        """Yield ``(sites, items)`` chunk pairs in global arrival order,
        materializing each chunk's Items transiently (API parity with
        :meth:`DistributedStream.iter_batches`)."""
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive, got {batch_size}"
            )
        items = self.items
        for lo in range(0, len(self), batch_size):
            hi = min(lo + batch_size, len(self))
            yield self.sites[lo:hi].tolist(), items[lo:hi]

    def shard_views(self, num_shards: int) -> List[ShardSliceView]:
        """Partition the sites into ``num_shards`` contiguous ranges and
        return one compacted :class:`ShardSliceView` per shard (the
        worker-process view of the multiprocess sharded engine)."""
        if not 1 <= num_shards <= self.num_sites:
            raise ConfigurationError(
                f"num_shards must be in 1..{self.num_sites}, got {num_shards}"
            )
        views = []
        for i in range(num_shards):
            site_lo, site_hi = ShardSliceView.shard_range(
                self.num_sites, num_shards, i
            )
            views.append(
                ShardSliceView.from_columns(
                    self.sites, self.weights, self.idents, site_lo, site_hi
                )
            )
        return views

    def local_streams(self) -> List[List[Item]]:
        """Items per site, each in arrival order (materializes Items)."""
        per_site: List[List[Item]] = [[] for _ in range(self.num_sites)]
        items = self.items
        for i in range(len(self)):
            per_site[int(self.sites[i])].append(items[i])
        return per_site

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarStream(n={len(self)}, k={self.num_sites}, "
            f"bytes={self.idents.nbytes + self.weights.nbytes + self.sites.nbytes})"
        )


def columnar_zipf_stream(
    n: int,
    num_sites: int,
    seed: Optional[int] = None,
    alpha: float = 1.1,
    max_weight: float = 1e6,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> ColumnarStream:
    """A round-robin Zipf workload generated straight into columns.

    The same bounded power law as :func:`repro.stream.generators.zipf_stream`
    (``w = min(max_weight, U^{-1/alpha})``, clamped to ``>= 1``) with
    distinct identifiers ``0..n-1`` and round-robin site assignment,
    drawn from a numpy PCG64 generator — chunked, so a billion-item
    stream never exists as Python objects.  (Distribution-identical to
    ``zipf_stream`` but *not* draw-for-draw identical: the scalar
    generator consumes ``random.Random``; convert with
    :meth:`ColumnarStream.from_distributed` when bit-parity with an
    Item-backed stream matters.)
    """
    _require_numpy()
    if alpha <= 1.0:
        raise ConfigurationError(f"alpha must exceed 1, got {alpha}")
    gen = _np.random.Generator(_np.random.PCG64(seed))
    exponent = -1.0 / alpha

    def fill(lo, idents, weights, sites):
        m = len(idents)
        u = _np.maximum(gen.random(m), 5e-324)
        _np.minimum(u**exponent, max_weight, out=weights)
        _np.maximum(weights, 1.0, out=weights)
        idents[:] = _np.arange(lo, lo + m)
        sites[:] = idents % num_sites

    return ColumnarStream.generate(n, num_sites, fill, chunk_size=chunk_size)

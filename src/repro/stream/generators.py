"""Workload generators for every experiment in DESIGN.md.

Each generator returns a list of :class:`~repro.stream.item.Item` in
global arrival order.  The weights cover the regimes the paper argues
about:

* *flat* streams (uniform / unit weights) — the unweighted special case
  whose lower bound (Theorem 2 via [31]) transfers to weighted SWOR;
* *skewed* streams (Zipf / Pareto) — the motivating regime where a few
  heavy items dominate and sampling **with** replacement degenerates
  (Section 1);
* *planted-heavy-hitter* streams — stress the level-set machinery
  (Lemma 1): a handful of items carry almost all the weight;
* *adversarial lower-bound* streams — the exact constructions inside
  the proofs of Theorem 5 (geometric ``(1+eps)^i`` growth) and
  Theorems 5/7 (per-epoch ``k^i`` weights), used to measure that real
  protocols pay the Omega() cost.

All generators take an explicit :class:`random.Random` so experiments
are reproducible; weights respect the paper's ``w >= 1`` normalization.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..common.errors import ConfigurationError
from .item import Item

__all__ = [
    "unit_stream",
    "uniform_stream",
    "zipf_stream",
    "pareto_stream",
    "planted_heavy_hitter_stream",
    "geometric_growth_stream",
    "epoch_weight_stream",
    "epoch_unit_stream",
    "two_phase_residual_stream",
    "shuffle_stream",
]


def _check_n(n: int) -> None:
    if n <= 0:
        raise ConfigurationError(f"stream length must be positive, got {n}")


def unit_stream(n: int, start_ident: int = 0) -> List[Item]:
    """``n`` items of weight 1 — the unweighted special case."""
    _check_n(n)
    return [Item(start_ident + i, 1.0) for i in range(n)]


def uniform_stream(
    n: int, rng: random.Random, low: float = 1.0, high: float = 100.0
) -> List[Item]:
    """Weights drawn uniformly from ``[low, high]``."""
    _check_n(n)
    if not 1.0 <= low <= high:
        raise ConfigurationError(f"need 1 <= low <= high, got [{low}, {high}]")
    return [Item(i, rng.uniform(low, high)) for i in range(n)]


def zipf_stream(
    n: int,
    rng: random.Random,
    alpha: float = 1.1,
    universe: Optional[int] = None,
    max_weight: float = 1e6,
) -> List[Item]:
    """Weights i.i.d. from a bounded Zipf-like power law.

    Each weight is ``min(max_weight, U^{-1/alpha})`` for uniform ``U`` —
    a Pareto tail with index ``alpha`` (``P(W > x) = x^-alpha``), the
    classic model for query/flow popularity.  ``universe`` (if given)
    draws identifiers with repetition from ``[0, universe)`` so the same
    identifier can recur with different weights, as the problem
    definition allows.
    """
    _check_n(n)
    if alpha <= 1.0:
        raise ConfigurationError(f"alpha must exceed 1, got {alpha}")
    items = []
    exponent = -1.0 / alpha
    for i in range(n):
        u = rng.random()
        while u <= 0.0:
            u = rng.random()
        w = min(max_weight, u**exponent)
        ident = i if universe is None else rng.randrange(universe)
        items.append(Item(ident, max(1.0, w)))
    return items


def pareto_stream(
    n: int, rng: random.Random, shape: float = 1.5, scale: float = 1.0
) -> List[Item]:
    """Weights i.i.d. Pareto(shape) scaled so the minimum weight is >= 1.

    Heavy-tailed flow-size model (shape < 2 gives infinite variance —
    the regime where residual heavy hitters matter most).
    """
    _check_n(n)
    if shape <= 0:
        raise ConfigurationError(f"shape must be positive, got {shape}")
    items = []
    for i in range(n):
        u = rng.random()
        while u <= 0.0:
            u = rng.random()
        w = scale * u ** (-1.0 / shape)
        items.append(Item(i, max(1.0, w)))
    return items


def planted_heavy_hitter_stream(
    n: int,
    rng: random.Random,
    num_heavy: int,
    dominance: float = 0.99,
    base_low: float = 1.0,
    base_high: float = 10.0,
) -> List[Item]:
    """A background stream plus ``num_heavy`` giants carrying
    ``dominance`` fraction of the total weight.

    This is the Section 1.2 hard case for the duplication reduction:
    with-replacement samples see only the giants, and a naive SWOR
    protocol without level sets thrashes.  Giants are interleaved at
    random positions.
    """
    _check_n(n)
    if not 0 < dominance < 1:
        raise ConfigurationError(f"dominance must be in (0,1), got {dominance}")
    if not 0 < num_heavy < n:
        raise ConfigurationError(
            f"num_heavy must be in (0, n), got {num_heavy} with n={n}"
        )
    background = [
        Item(i, rng.uniform(base_low, base_high)) for i in range(n - num_heavy)
    ]
    light_total = sum(it.weight for it in background)
    heavy_total = light_total * dominance / (1.0 - dominance)
    heavy_each = max(1.0, heavy_total / num_heavy)
    giants = [Item(n - num_heavy + j, heavy_each) for j in range(num_heavy)]
    items = background + giants
    rng.shuffle(items)
    return items


def geometric_growth_stream(eps: float, total_weight: float) -> List[Item]:
    """The Theorem 5/7 construction: ``w_0 = 1``, ``w_i = eps*(1+eps)^i``.

    Every update is an ``eps/(1+eps) > eps/2`` heavy hitter of the
    prefix when it arrives, so any correct (eps/2)-tracker must change
    its answer Omega(log(W)/eps) times.  The stream stops once the total
    weight reaches ``total_weight``.
    """
    if not 0 < eps < 1:
        raise ConfigurationError(f"eps must be in (0,1), got {eps}")
    if total_weight <= 1:
        raise ConfigurationError("total_weight must exceed 1")
    items = [Item(0, 1.0)]
    acc = 1.0
    i = 1
    while acc < total_weight:
        w = max(1.0, eps * (1.0 + eps) ** i)
        items.append(Item(i, w))
        acc += w
        i += 1
    return items


def epoch_weight_stream(k: int, num_epochs: int) -> List[Item]:
    """Theorem 5's second construction: in epoch ``i`` each of the ``k``
    sites receives one item of weight ``k^i``.

    The first arrival of an epoch is instantly a 1/2 heavy hitter, and
    no site can tell whether it was first — forcing Omega(k) messages
    per epoch, i.e. Omega(k log(W)/log(k)) overall.  Items are returned
    in epoch order; pair with ``round_robin`` partitioning so each site
    gets exactly one item per epoch.
    """
    if k < 2:
        raise ConfigurationError(f"construction needs k >= 2 sites, got {k}")
    if num_epochs <= 0:
        raise ConfigurationError(f"num_epochs must be positive, got {num_epochs}")
    items = []
    ident = 0
    for epoch in range(num_epochs):
        w = float(k**epoch)
        for _ in range(k):
            items.append(Item(ident, w))
            ident += 1
    return items


def epoch_unit_stream(k: int, num_epochs: int, cap: int = 2_000_000) -> List[Item]:
    """Theorem 7's construction: epoch ``i`` ends after ``k^i`` total
    unit-weight updates.

    ``cap`` bounds the materialized length (the construction is
    exponential in ``num_epochs``); generation stops early at the cap.
    """
    if k < 2:
        raise ConfigurationError(f"construction needs k >= 2 sites, got {k}")
    if num_epochs <= 0:
        raise ConfigurationError(f"num_epochs must be positive, got {num_epochs}")
    n = min(cap, k ** (num_epochs - 1) if num_epochs > 1 else 1)
    n = max(n, 1)
    return unit_stream(int(n))


def two_phase_residual_stream(
    n: int,
    rng: random.Random,
    num_giants: int,
    giant_weight: float,
    residual_heavy: int,
    residual_fraction: float,
) -> List[Item]:
    """A stream built to separate residual-HH from plain l1-HH tracking.

    ``num_giants`` items of ``giant_weight`` dwarf everything; beneath
    them, ``residual_heavy`` items each carry ``residual_fraction`` of
    the *residual* (giant-free) weight; the rest is light background.
    A plain eps-l1-HH guarantee only promises the giants; the residual
    guarantee (Definition 6) additionally promises the middle tier.

    Returns the shuffled stream; giants get the highest identifiers
    ``n-num_giants .. n-1`` and residual-heavy items the ids just below,
    so tests can identify tiers by id.
    """
    _check_n(n)
    base_n = n - num_giants - residual_heavy
    if base_n <= 0:
        raise ConfigurationError("n too small for the requested tiers")
    if not 0 < residual_fraction < 1:
        raise ConfigurationError(
            f"residual_fraction must be in (0,1), got {residual_fraction}"
        )
    background = [Item(i, rng.uniform(1.0, 5.0)) for i in range(base_n)]
    light_total = sum(it.weight for it in background)
    # Residual-heavy tier: each item is residual_fraction of the final
    # residual weight (background + residual tier).
    denom = 1.0 - residual_heavy * residual_fraction
    if denom <= 0:
        raise ConfigurationError(
            "residual_heavy * residual_fraction must be < 1 for a valid tier"
        )
    residual_total = light_total / denom
    mid_weight = max(1.0, residual_fraction * residual_total)
    middle = [Item(base_n + j, mid_weight) for j in range(residual_heavy)]
    giants = [
        Item(base_n + residual_heavy + j, giant_weight) for j in range(num_giants)
    ]
    items = background + middle + giants
    rng.shuffle(items)
    return items


def shuffle_stream(items: Sequence[Item], rng: random.Random) -> List[Item]:
    """Return a shuffled copy (arrival order is adversarial in the model)."""
    out = list(items)
    rng.shuffle(out)
    return out

"""Adversarial arrival orderings.

The model (Section 2.1) makes no assumption about arrival order: the
adversary fixes both the interleaving across sites *and* the global
order.  The partitioners in :mod:`repro.stream.partitioners` cover the
site dimension; this module covers the temporal one with orderings that
historically break samplers:

* giants first — the threshold saturates immediately, starving later
  light items of representation if the sampler is biased;
* giants last — level sets for high weights fill only at the end;
* sandwich — half the giants early, half late;
* bursty — all of one site's items arrive before the next site's
  (maximal site-view desynchronization when combined with round-robin).

All are deterministic given the input, so statistical tests can run the
same ordering across many protocol seeds.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..common.errors import ConfigurationError
from .item import Item

__all__ = [
    "heaviest_first",
    "heaviest_last",
    "sandwich",
    "bursty_interleave",
    "ADVERSARIAL_ORDERINGS",
]


def heaviest_first(items: Sequence[Item]) -> List[Item]:
    """Sort by decreasing weight (ties by identifier)."""
    return sorted(items, key=lambda it: (-it.weight, it.ident))


def heaviest_last(items: Sequence[Item]) -> List[Item]:
    """Sort by increasing weight (ties by identifier)."""
    return sorted(items, key=lambda it: (it.weight, it.ident))


def sandwich(items: Sequence[Item]) -> List[Item]:
    """Heaviest items split between the very start and the very end.

    The odd-ranked giants open the stream, the even-ranked giants close
    it, and everything else sits in the middle in weight order.
    """
    ranked = heaviest_first(items)
    giants = ranked[: max(1, len(ranked) // 10)]
    middle = ranked[len(giants):]
    front = giants[0::2]
    back = giants[1::2]
    return front + middle + back


def bursty_interleave(items: Sequence[Item], burst: int, rng: random.Random) -> List[Item]:
    """Shuffle, then emit in contiguous bursts of ``burst`` items drawn
    from alternating halves — a crude model of traffic waves."""
    if burst <= 0:
        raise ConfigurationError(f"burst must be positive, got {burst}")
    pool = list(items)
    rng.shuffle(pool)
    half = len(pool) // 2
    first, second = pool[:half], pool[half:]
    out: List[Item] = []
    i = j = 0
    take_first = True
    while i < len(first) or j < len(second):
        if take_first and i < len(first):
            out.extend(first[i : i + burst])
            i += burst
        elif j < len(second):
            out.extend(second[j : j + burst])
            j += burst
        else:
            out.extend(first[i : i + burst])
            i += burst
        take_first = not take_first
    return out


#: Named deterministic orderings with a uniform ``(items, rng)`` signature.
ADVERSARIAL_ORDERINGS = {
    "heaviest_first": lambda items, rng: heaviest_first(items),
    "heaviest_last": lambda items, rng: heaviest_last(items),
    "sandwich": lambda items, rng: sandwich(items),
    "bursty": lambda items, rng: bursty_interleave(items, 64, rng),
}

"""Weighted stream items and ordered distributed streams.

The paper's input is a global sequence ``o_1, o_2, ...`` of weighted
items ``(e, w)`` — globally ordered by arrival time — partitioned
adversarially across ``k`` sites (Section 2.1).  :class:`Item` is one
update; :class:`DistributedStream` is the global order together with the
site assignment, which is exactly what the simulator replays.
"""

from __future__ import annotations

import math
from operator import index as _as_int_index
from typing import Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

try:  # optional: backs the batched engine's vectorized fast path
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError, InvalidWeightError

__all__ = ["Item", "DistributedStream", "total_weight", "validate_weights"]


class Item(NamedTuple):
    """One weighted stream update ``(e, w)``.

    Attributes
    ----------
    ident:
        The item identifier ``e``.  Identifiers may repeat across the
        stream; each occurrence is sampled as a distinct item
        (Section 1, problem definition).
    weight:
        The positive weight ``w``.  The paper normalizes to ``w >= 1``;
        generators in this package honor that.
    """

    ident: int
    weight: float


def validate_weights(items: Iterable[Item], require_at_least_one: bool = True) -> None:
    """Raise :class:`InvalidWeightError` on non-positive/non-finite weights.

    ``require_at_least_one`` additionally enforces the paper's ``w >= 1``
    normalization (Section 2.1).
    """
    for item in items:
        w = item.weight
        if not math.isfinite(w) or w <= 0.0:
            raise InvalidWeightError(f"item {item.ident} has invalid weight {w}")
        if require_at_least_one and w < 1.0:
            raise InvalidWeightError(
                f"item {item.ident} has weight {w} < 1; the model assumes "
                "weights are normalized to be at least 1"
            )


def total_weight(items: Iterable[Item]) -> float:
    """Sum of weights — the paper's ``W``."""
    return sum(item.weight for item in items)


class DistributedStream:
    """A globally-ordered stream with a per-item site assignment.

    Parameters
    ----------
    items:
        Items in global arrival order.
    assignment:
        ``assignment[j]`` is the site (``0..k-1``) receiving item ``j``.
    num_sites:
        The number of sites ``k``.
    """

    def __init__(
        self,
        items: Sequence[Item],
        assignment: Sequence[int],
        num_sites: int,
    ) -> None:
        if len(items) != len(assignment):
            raise ConfigurationError(
                f"{len(items)} items but {len(assignment)} assignments"
            )
        if num_sites <= 0:
            raise ConfigurationError(f"num_sites must be positive, got {num_sites}")
        for site in assignment:
            if not 0 <= site < num_sites:
                raise ConfigurationError(
                    f"site index {site} out of range for k={num_sites}"
                )
        self._items: List[Item] = list(items)
        self._assignment: List[int] = list(assignment)
        self.num_sites = num_sites
        self._arrays: Optional[Tuple] = None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Tuple[int, Item]]:
        """Yield ``(site, item)`` pairs in global arrival order."""
        return iter(zip(self._assignment, self._items))

    @property
    def items(self) -> List[Item]:
        """The items in global arrival order (copy-safe view)."""
        return self._items

    @property
    def assignment(self) -> List[int]:
        """Per-item site indices, aligned with :attr:`items`."""
        return self._assignment

    def total_weight(self) -> float:
        """The stream's total weight ``W``."""
        return total_weight(self._items)

    def prefix_weights(self) -> List[float]:
        """``W_t`` for every prefix ``t`` (1-indexed semantics: entry j
        is the weight of the first ``j+1`` items)."""
        acc = 0.0
        out = []
        for item in self._items:
            acc += item.weight
            out.append(acc)
        return out

    def iter_batches(
        self, batch_size: int
    ) -> Iterator[Tuple[List[int], List[Item]]]:
        """Yield ``(sites, items)`` chunk pairs in global arrival order.

        Chunked iteration for batch-oriented consumers: each yielded
        pair holds ``batch_size`` consecutive arrivals (the final chunk
        may be shorter), with ``sites[i]`` the site receiving
        ``items[i]``.
        """
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive, got {batch_size}"
            )
        for lo in range(0, len(self._items), batch_size):
            hi = lo + batch_size
            yield self._assignment[lo:hi], self._items[lo:hi]

    def arrays(self) -> Optional[Tuple]:
        """``(assignment, weights, idents)`` as numpy arrays, built once
        and cached — the structure-of-arrays view the batched and
        columnar engines slice per batch.  Returns ``None`` when numpy
        is unavailable.  ``idents`` is ``None`` when identifiers are not
        int64-representable (the columnar fast path then falls back to
        the object-based one)."""
        if _np is None:
            return None
        if self._arrays is None:
            n = len(self._items)
            try:
                # operator.index rejects floats and other non-integral
                # idents (np.fromiter alone would silently truncate
                # 2.5 -> 2); any failure takes the object-path fallback.
                idents = _np.fromiter(
                    (_as_int_index(item.ident) for item in self._items),
                    dtype=_np.int64,
                    count=n,
                )
            except (TypeError, ValueError, OverflowError):
                idents = None
            self._arrays = (
                _np.asarray(self._assignment, dtype=_np.int64),
                _np.fromiter(
                    (item.weight for item in self._items),
                    dtype=_np.float64,
                    count=n,
                ),
                idents,
            )
        return self._arrays

    def local_streams(self) -> List[List[Item]]:
        """Items per site, each in arrival order (the ``S_i`` views)."""
        per_site: List[List[Item]] = [[] for _ in range(self.num_sites)]
        for site, item in self:
            per_site[site].append(item)
        return per_site

"""Stream substrate: weighted items, workloads, and site assignments."""

from .item import DistributedStream, Item, total_weight, validate_weights
from .columns import ColumnarStream, ItemColumnView, columnar_zipf_stream
from .generators import (
    epoch_unit_stream,
    epoch_weight_stream,
    geometric_growth_stream,
    pareto_stream,
    planted_heavy_hitter_stream,
    shuffle_stream,
    two_phase_residual_stream,
    uniform_stream,
    unit_stream,
    zipf_stream,
)
from .partitioners import (
    PARTITIONERS,
    contiguous_blocks,
    heavy_to_one_site,
    round_robin,
    single_site,
    uniform_random,
)
from .datasets import (
    FlowRecord,
    QueryRecord,
    flows_to_stream,
    network_flow_trace,
    queries_to_stream,
    search_query_log,
)
from .adversary import (
    ADVERSARIAL_ORDERINGS,
    bursty_interleave,
    heaviest_first,
    heaviest_last,
    sandwich,
)

__all__ = [
    "Item",
    "DistributedStream",
    "ColumnarStream",
    "ItemColumnView",
    "columnar_zipf_stream",
    "total_weight",
    "validate_weights",
    "unit_stream",
    "uniform_stream",
    "zipf_stream",
    "pareto_stream",
    "planted_heavy_hitter_stream",
    "geometric_growth_stream",
    "epoch_weight_stream",
    "epoch_unit_stream",
    "two_phase_residual_stream",
    "shuffle_stream",
    "round_robin",
    "uniform_random",
    "contiguous_blocks",
    "heavy_to_one_site",
    "single_site",
    "PARTITIONERS",
    "QueryRecord",
    "FlowRecord",
    "search_query_log",
    "network_flow_trace",
    "queries_to_stream",
    "flows_to_stream",
    "heaviest_first",
    "heaviest_last",
    "sandwich",
    "bursty_interleave",
    "ADVERSARIAL_ORDERINGS",
]

"""Bounds, experiment harness, and table rendering for the benchmarks."""

from . import bounds
from .experiments import (
    estimator_accuracy,
    inclusion_frequencies,
    messages_vs_sample_size,
    messages_vs_sites,
    messages_vs_weight,
    run_swor_once,
)
from .tables import format_table, render_rows
from .validation import CertificationResult, certify_swor

__all__ = [
    "bounds",
    "CertificationResult",
    "certify_swor",
    "run_swor_once",
    "estimator_accuracy",
    "messages_vs_weight",
    "messages_vs_sites",
    "messages_vs_sample_size",
    "inclusion_frequencies",
    "format_table",
    "render_rows",
]

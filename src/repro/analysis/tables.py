"""Plain-text table rendering for experiment output.

Benchmarks print paper-shaped tables into ``bench_output.txt``; this is
the one place that controls their formatting, so every experiment's
output looks the same: a header, aligned columns, and a caption line
tying it back to the paper artifact it reproduces.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "render_rows"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def render_rows(
    rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None
) -> List[List[str]]:
    """Convert dict-rows to string cells in a fixed column order."""
    if not rows:
        return []
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [cols]
    for row in rows:
        rendered.append([_fmt(row.get(col, "")) for col in cols])
    return rendered


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    caption: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    cells = render_rows(rows, columns)
    if not cells:
        return (title or "") + "\n(empty table)\n"
    widths = [max(len(r[i]) for r in cells) for i in range(len(cells[0]))]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    header = " | ".join(cell.ljust(w) for cell, w in zip(cells[0], widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if caption:
        lines.append(f"   ({caption})")
    return "\n".join(lines) + "\n"

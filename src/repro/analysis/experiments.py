"""Experiment harness: parameter sweeps with bound-normalized output.

One-stop helpers used by the benchmark suite.  Each returns a list of
dict-rows ready for :func:`repro.analysis.tables.format_table`, with a
``ratio`` column dividing measured messages by the corresponding
closed-form bound — the quantity the shape claims say should stay
roughly flat across the sweep.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.config import SworConfig
from ..core.naive import PerSiteTopS
from ..core.protocol import DistributedWeightedSWOR
from ..runtime import Engine
from ..stream.item import DistributedStream, Item
from ..stream.partitioners import round_robin
from . import bounds

__all__ = [
    "run_swor_once",
    "messages_vs_weight",
    "messages_vs_sites",
    "messages_vs_sample_size",
    "inclusion_frequencies",
    "estimator_accuracy",
]


def run_swor_once(
    stream: DistributedStream,
    sample_size: int,
    seed: int,
    config_kwargs: Optional[dict] = None,
    engine: Union[str, Engine, None] = None,
    batch_size: Optional[int] = None,
) -> Dict[str, float]:
    """Run the Theorem 3 protocol once; return a measurement row.

    ``engine`` / ``batch_size`` select the execution engine, so every
    sweep below can be measured under either runtime.
    """
    cfg = SworConfig(
        num_sites=stream.num_sites,
        sample_size=sample_size,
        **(config_kwargs or {}),
    )
    proto = DistributedWeightedSWOR(
        cfg, seed=seed, engine=engine, batch_size=batch_size
    )
    counters = proto.run(stream)
    total_w = stream.total_weight()
    bound = bounds.swor_message_bound(stream.num_sites, sample_size, total_w)
    return {
        "k": stream.num_sites,
        "s": sample_size,
        "W": total_w,
        "messages": counters.total,
        "upstream": counters.upstream,
        "downstream": counters.downstream,
        "early": counters.by_kind.get("early", 0),
        "regular": counters.by_kind.get("regular", 0),
        "bound": bound,
        "ratio": counters.total / bound,
    }


def _mean_rows(rows: List[Dict[str, float]]) -> Dict[str, float]:
    """Average numeric fields across repetition rows."""
    out: Dict[str, float] = {}
    for key in rows[0]:
        values = [row[key] for row in rows]
        out[key] = sum(values) / len(values)
    return out


def messages_vs_weight(
    make_items: Callable[[random.Random, int], Sequence[Item]],
    weight_steps: Sequence[int],
    k: int,
    s: int,
    reps: int = 3,
    base_seed: int = 0,
    engine: Union[str, Engine, None] = None,
    batch_size: Optional[int] = None,
) -> List[Dict[str, float]]:
    """E1 sweep: grow the stream (hence ``W``), fix ``k`` and ``s``.

    ``make_items(rng, n)`` builds a length-``n`` stream; ``weight_steps``
    are the lengths to sweep.
    """
    rows = []
    for n in weight_steps:
        reps_rows = []
        for rep in range(reps):
            rng = random.Random(base_seed * 7919 + n * 31 + rep)
            stream = round_robin(make_items(rng, n), k)
            reps_rows.append(
                run_swor_once(
                    stream,
                    s,
                    seed=base_seed + rep,
                    engine=engine,
                    batch_size=batch_size,
                )
            )
        rows.append(_mean_rows(reps_rows))
    return rows


def messages_vs_sites(
    make_items: Callable[[random.Random, int], Sequence[Item]],
    n: int,
    site_steps: Sequence[int],
    s: int,
    reps: int = 3,
    base_seed: int = 0,
    engine: Union[str, Engine, None] = None,
    batch_size: Optional[int] = None,
) -> List[Dict[str, float]]:
    """E2 sweep: fix the stream, sweep ``k``."""
    rows = []
    for k in site_steps:
        reps_rows = []
        for rep in range(reps):
            rng = random.Random(base_seed * 7919 + k * 131 + rep)
            stream = round_robin(make_items(rng, n), k)
            reps_rows.append(
                run_swor_once(
                    stream,
                    s,
                    seed=base_seed + rep,
                    engine=engine,
                    batch_size=batch_size,
                )
            )
        rows.append(_mean_rows(reps_rows))
    return rows


def messages_vs_sample_size(
    make_items: Callable[[random.Random, int], Sequence[Item]],
    n: int,
    k: int,
    sample_steps: Sequence[int],
    reps: int = 3,
    base_seed: int = 0,
    include_naive: bool = True,
    engine: Union[str, Engine, None] = None,
    batch_size: Optional[int] = None,
) -> List[Dict[str, float]]:
    """E3 sweep: fix stream and ``k``, sweep ``s``; optionally run the
    naive per-site-top-``s`` baseline on the identical streams."""
    rows = []
    for s in sample_steps:
        reps_rows = []
        for rep in range(reps):
            rng = random.Random(base_seed * 7919 + s * 17 + rep)
            items = make_items(rng, n)
            stream = round_robin(items, k)
            row = run_swor_once(
                stream,
                s,
                seed=base_seed + rep,
                engine=engine,
                batch_size=batch_size,
            )
            if include_naive:
                naive = PerSiteTopS(k, s, seed=base_seed + rep + 1000)
                ncount = naive.run(round_robin(items, k))
                row["naive_messages"] = ncount.total
                row["naive_over_ours"] = ncount.total / max(row["messages"], 1)
            reps_rows.append(row)
        rows.append(_mean_rows(reps_rows))
    return rows


def estimator_accuracy(
    items: Sequence[Item],
    k: int,
    sample_steps: Sequence[int],
    predicate: Callable[[Item], bool],
    trials: int = 25,
    base_seed: int = 0,
    confidence: float = 0.95,
    engine: Union[str, Engine, None] = None,
    batch_size: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Accuracy sweep of the HT subset-sum estimator vs sample size.

    For each ``s`` the Theorem 3 protocol runs ``trials`` times (fresh
    seeds, same stream) and the live sample is queried through
    :func:`repro.query.estimators.subset_sum`.  Rows report the mean
    relative error, RMSE, empirical CI coverage against the nominal
    ``confidence``, and mean relative CI width — the quantities the
    estimator-quality claims are judged on.
    """
    from ..query.estimators import subset_sum

    truth = sum(item.weight for item in items if predicate(item))
    stream = round_robin(items, k)
    rows = []
    for s in sample_steps:
        cfg = SworConfig(num_sites=k, sample_size=s)
        errs: List[float] = []
        sq_errs: List[float] = []
        widths: List[float] = []
        covered = 0
        for trial in range(trials):
            proto = DistributedWeightedSWOR(
                cfg,
                seed=base_seed * 10007 + s * 101 + trial,
                engine=engine,
                batch_size=batch_size,
            )
            proto.run(stream)
            estimate = subset_sum(
                proto.sample_with_keys(), s, predicate, confidence
            )
            errs.append(estimate.rel_error(truth))
            sq_errs.append((estimate.value - truth) ** 2)
            widths.append(estimate.ci_width / truth if truth else 0.0)
            covered += estimate.covers(truth)
        rows.append(
            {
                "s": s,
                "trials": trials,
                "truth": truth,
                "mean_rel_err": sum(errs) / trials,
                "rmse": (sum(sq_errs) / trials) ** 0.5,
                "coverage": covered / trials,
                "nominal": confidence,
                "mean_rel_ci_width": sum(widths) / trials,
            }
        )
    return rows


def inclusion_frequencies(
    items: Sequence[Item],
    k: int,
    s: int,
    trials: int,
    base_seed: int = 0,
    partition_seed: int = 99,
    protocol_factory: Optional[Callable[[int], object]] = None,
    engine: Union[str, Engine, None] = None,
    batch_size: Optional[int] = None,
) -> Dict[int, float]:
    """E4: empirical inclusion frequency of each identifier over many
    independent protocol runs (identifiers must be unique per item).

    ``protocol_factory(seed)`` may supply any object with ``run`` and
    ``sample``; defaults to the Theorem 3 protocol under the selected
    engine.
    """
    from ..stream.partitioners import uniform_random

    counts: Dict[int, int] = {}
    for trial in range(trials):
        rng = random.Random(partition_seed)
        stream = uniform_random(items, k, rng)
        if protocol_factory is None:
            proto: object = DistributedWeightedSWOR(
                SworConfig(num_sites=k, sample_size=s),
                seed=base_seed + trial,
                engine=engine,
                batch_size=batch_size,
            )
        else:
            proto = protocol_factory(base_seed + trial)
        proto.run(stream)  # type: ignore[attr-defined]
        for item in proto.sample():  # type: ignore[attr-defined]
            counts[item.ident] = counts.get(item.ident, 0) + 1
    return {ident: c / trials for ident, c in counts.items()}

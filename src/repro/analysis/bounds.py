"""Closed-form message-complexity bounds from the paper's theorems.

Every benchmark prints ``measured / bound`` ratios against these
functions, so the *shape* claims (linearity in ``log W``, the
``log(1+k/s)`` denominator, the additive ``k + s`` structure, the
Section 5 table rows) are auditable.  All bounds are Theta-forms
evaluated without hidden constants — ratios are expected to be roughly
flat across a sweep, not equal to 1.
"""

from __future__ import annotations

import math

from ..common.errors import ConfigurationError

__all__ = [
    "swor_message_bound",
    "swor_lemma3_bound",
    "swor_lower_bound",
    "expected_epochs_bound",
    "swr_message_bound",
    "naive_per_site_top_s_bound",
    "hh_upper_bound",
    "hh_lower_bound",
    "l1_upper_this_work",
    "l1_upper_cmyz_folklore",
    "l1_upper_hyz",
    "l1_lower_hyz",
    "l1_lower_this_work",
    "swor_advantage_over_naive",
    "l1_regime_boundary",
]


def _safe_log(x: float) -> float:
    """``log(x)`` clamped below at values that keep bounds positive."""
    return math.log(max(x, 2.0))


def _check_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value}")


def swor_message_bound(k: int, s: int, total_weight: float) -> float:
    """Theorem 3: ``k·log(W/s)/log(1+k/s)`` expected messages."""
    _check_positive(k=k, s=s, total_weight=total_weight)
    return k * _safe_log(total_weight / s) / math.log(1.0 + k / s)


def swor_lemma3_bound(k: int, s: int, total_weight: float) -> float:
    """Lemma 3's pre-simplification form ``s·r·log(W/s)/log(r)`` with
    ``r = max(2, k/s)`` — the same Theta, but the natural normalizer
    for measured counts (early messages come in ``4rs`` batches)."""
    _check_positive(k=k, s=s, total_weight=total_weight)
    r = max(2.0, k / s)
    return s * r * _safe_log(total_weight / s) / math.log(r)


def swor_lower_bound(k: int, s: int, total_weight: float) -> float:
    """Corollary 2: ``Omega(k·log(W/s)/log(1+k/s))`` messages."""
    return swor_message_bound(k, s, total_weight)


def expected_epochs_bound(k: int, s: int, total_weight: float) -> float:
    """Proposition 5: ``E[epochs] <= 3(log(W/s)/log(r) + 1)``."""
    _check_positive(k=k, s=s, total_weight=total_weight)
    r = max(2.0, k / s)
    return 3.0 * (_safe_log(total_weight / s) / math.log(r) + 1.0)


def swr_message_bound(k: int, s: int, total_weight: float) -> float:
    """Corollary 1: ``(k + s·log s)·log(W)/log(2+k/s)``."""
    _check_positive(k=k, s=s, total_weight=total_weight)
    return (k + s * _safe_log(s)) * _safe_log(total_weight) / math.log(2.0 + k / s)


def naive_per_site_top_s_bound(k: int, s: int, total_weight: float) -> float:
    """The Section 1.2 naive protocol: ``O(k·s·log W)`` expected messages."""
    _check_positive(k=k, s=s, total_weight=total_weight)
    return k * s * _safe_log(total_weight)


def hh_upper_bound(k: int, eps: float, delta: float, total_weight: float) -> float:
    """Theorem 4: ``(k/log k + log(1/(eps·delta))/eps)·log(eps·W)``."""
    _check_positive(k=k, eps=eps, delta=delta, total_weight=total_weight)
    return (
        k / _safe_log(k) + math.log(1.0 / (eps * delta)) / eps
    ) * _safe_log(eps * total_weight)


def hh_lower_bound(k: int, eps: float, total_weight: float) -> float:
    """Theorem 5: ``Omega(k·log(W)/log(k) + log(W)/eps)``."""
    _check_positive(k=k, eps=eps, total_weight=total_weight)
    return k * _safe_log(total_weight) / _safe_log(k) + _safe_log(total_weight) / eps


def l1_upper_this_work(
    k: int, eps: float, delta: float, total_weight: float
) -> float:
    """Theorem 6: ``k·log(eps·W)/log(k) + log(eps·W)·log(1/delta)/eps^2``."""
    _check_positive(k=k, eps=eps, delta=delta, total_weight=total_weight)
    logw = _safe_log(eps * total_weight)
    return k * logw / _safe_log(k) + logw * math.log(1.0 / delta) / (eps * eps)


def l1_upper_cmyz_folklore(k: int, eps: float, total_weight: float) -> float:
    """The "[14] + folklore" row of the Section 5 table: ``k·log(W)/eps``."""
    _check_positive(k=k, eps=eps, total_weight=total_weight)
    return k * _safe_log(total_weight) / eps


def l1_upper_hyz(k: int, eps: float, delta: float, total_weight: float) -> float:
    """The [23] row: ``k·log W + sqrt(k)·log(W)·log(1/delta)/eps``."""
    _check_positive(k=k, eps=eps, delta=delta, total_weight=total_weight)
    logw = _safe_log(total_weight)
    return k * logw + math.sqrt(k) * logw * max(1.0, math.log(1.0 / delta)) / eps


def l1_lower_hyz(k: int, eps: float, total_weight: float) -> float:
    """The [23] lower-bound row: ``sqrt(min(k, 1/eps^2))·log(W)/eps``."""
    _check_positive(k=k, eps=eps, total_weight=total_weight)
    return math.sqrt(min(float(k), 1.0 / (eps * eps))) * _safe_log(total_weight) / eps


def l1_lower_this_work(k: int, total_weight: float) -> float:
    """Theorem 7's new lower-bound row: ``k·log(W)/log(k)``."""
    _check_positive(k=k, total_weight=total_weight)
    return k * _safe_log(total_weight) / _safe_log(k)


def swor_advantage_over_naive(k: int, s: int, total_weight: float) -> float:
    """Factor by which the naive per-site-top-``s`` protocol out-spends
    Theorem 3: ``[k·s·logW] / [k·log(W/s)/log(1+k/s)]``.

    Grows like ``s·log(1+k/s)`` — the additive-vs-multiplicative gap
    experiment E3 charts.
    """
    return naive_per_site_top_s_bound(k, s, total_weight) / swor_message_bound(
        k, s, total_weight
    )


def l1_regime_boundary(eps: float) -> float:
    """``k* = 1/eps^2`` — Section 5's regime boundary.

    For ``k >= k*`` this work's bound is optimal (and beats [23]); for
    ``k < k*`` the [23] bounds are already tight.
    """
    if eps <= 0:
        raise ConfigurationError(f"eps must be positive, got {eps}")
    return 1.0 / (eps * eps)

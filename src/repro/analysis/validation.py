"""Statistical certification of weighted samplers (Definition 1/3).

A reusable harness for validating that *any* sampler — built-in or a
downstream user's modification — produces true weighted samples:

* :func:`certify_swor` runs a sampler factory many times on a fixed
  small universe, tallies inclusion frequencies (optionally at a
  mid-stream prefix, exercising the continuous guarantee), and
  chi-square-tests them against the exact Definition 1 law;
* :class:`CertificationResult` carries the verdict plus the evidence.

Protocol-agnostic: the factory returns any object with a ``sample()``
method and either ``run(stream)`` (distributed) or ``insert(item)``
(centralized).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from ..common.errors import ConfigurationError
from ..common.order_stats import exact_swor_inclusion_probabilities
from ..common.stats import chi_square_pvalue, chi_square_statistic, total_variation
from ..stream.item import Item
from ..stream.partitioners import round_robin

__all__ = ["CertificationResult", "certify_swor"]


@dataclass
class CertificationResult:
    """Outcome of a sampler certification run."""

    passed: bool
    pvalue: float
    tv_distance: float
    trials: int
    sample_size: int
    empirical: Dict[int, float] = field(default_factory=dict)
    exact: Dict[int, float] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"{verdict}: p={self.pvalue:.4f}, TV={self.tv_distance:.4f} "
            f"over {self.trials} trials (s={self.sample_size})"
        )


def certify_swor(
    sampler_factory: Callable[[int], object],
    weights: Sequence[float],
    sample_size: int,
    trials: int = 3000,
    num_sites: int = 1,
    prefix: Optional[int] = None,
    significance: float = 1e-4,
    partition_seed: int = 0,
) -> CertificationResult:
    """Certify that a sampler follows the exact weighted-SWOR law.

    Parameters
    ----------
    sampler_factory:
        ``factory(seed)`` returning a fresh sampler.  Distributed
        samplers (with ``run``) receive a round-robin
        :class:`~repro.stream.item.DistributedStream` over
        ``num_sites``; centralized ones (with ``insert``) receive items
        one at a time.
    weights:
        The test universe (must be small: the exact law is computed by
        exhaustive recursion, so <= ~14 items).
    sample_size:
        ``s`` of the sampler under test.
    prefix:
        If given, only the first ``prefix`` items are fed and the exact
        law is computed on that prefix — this is how the *continuous*
        guarantee (Definition 3) is certified at interior time steps.
    significance:
        Chi-square p-value below which certification fails.
    """
    if len(weights) > 16:
        raise ConfigurationError(
            "certification universe too large for the exact-law recursion"
        )
    upto = len(weights) if prefix is None else prefix
    if not 0 < upto <= len(weights):
        raise ConfigurationError(f"prefix {prefix} out of range")
    items = [Item(i, float(w)) for i, w in enumerate(weights[:upto])]
    effective_s = min(sample_size, upto)

    counts: Counter = Counter()
    for trial in range(trials):
        sampler = sampler_factory(trial)
        if hasattr(sampler, "run"):
            sampler.run(round_robin(items, num_sites))
        else:
            for item in items:
                sampler.insert(item)
        sample = list(sampler.sample())
        if len(sample) != effective_s:
            return CertificationResult(
                passed=False,
                pvalue=0.0,
                tv_distance=1.0,
                trials=trials,
                sample_size=effective_s,
            )
        for item in sample:
            counts[item.ident] += 1

    exact = exact_swor_inclusion_probabilities(
        [w for w in weights[:upto]], effective_s
    )
    expected = {i: trials * p for i, p in enumerate(exact)}
    stat, df = chi_square_statistic(counts, expected)
    pvalue = chi_square_pvalue(stat, df)
    empirical = {i: counts.get(i, 0) / trials for i in range(upto)}
    exact_map = {i: p for i, p in enumerate(exact)}
    tv = total_variation(
        {i: v / effective_s for i, v in empirical.items()},
        {i: v / effective_s for i, v in exact_map.items()},
    )
    return CertificationResult(
        passed=pvalue >= significance,
        pvalue=pvalue,
        tv_distance=tv,
        trials=trials,
        sample_size=effective_s,
        empirical=empirical,
        exact=exact_map,
    )

"""Residual heavy-hitter tracking (Theorem 4) and guarantee scoring."""

from .guarantees import HitterScore, score_l1_report, score_residual_report
from .residual import ResidualHeavyHitterTracker, theorem4_sample_size
from .swr_baseline import SwrHeavyHitterTracker, coupon_collector_sample_size

__all__ = [
    "ResidualHeavyHitterTracker",
    "theorem4_sample_size",
    "SwrHeavyHitterTracker",
    "coupon_collector_sample_size",
    "HitterScore",
    "score_l1_report",
    "score_residual_report",
]

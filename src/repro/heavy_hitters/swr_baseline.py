"""The classic SWR-based heavy-hitter tracker — the technique Theorem 4
improves upon.

Section 1.2: "By standard coupon collector arguments, taking
O(log(1/eps)/eps) samples with replacement is enough to find all items
which have weight within an eps fraction of the total."  This module
implements exactly that — a distributed with-replacement sampler of
``s = c·log(1/(eps·delta))/eps`` slots whose report is the heaviest
sampled items — so the benchmarks can show both halves of the paper's
argument:

* it *does* solve the classic Definition 5 problem (plain l1 heavy
  hitters), and
* it *cannot* solve Definition 6 (residual heavy hitters): all slots
  collapse onto the few giants, which is the failure that motivates
  sampling without replacement.
"""

from __future__ import annotations

import math
from typing import List, Optional, Union

from ..common.errors import ConfigurationError
from ..core.swr import DistributedWeightedSWR
from ..net.counters import MessageCounters
from ..runtime import Engine
from ..stream.item import DistributedStream, Item

__all__ = ["SwrHeavyHitterTracker", "coupon_collector_sample_size"]


def coupon_collector_sample_size(eps: float, delta: float) -> int:
    """``s = 6·log(1/(eps·delta))/eps`` — the with-replacement budget
    matched to Theorem 4's, so comparisons are like for like."""
    if not 0 < eps < 1:
        raise ConfigurationError(f"eps must be in (0,1), got {eps}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must be in (0,1), got {delta}")
    return max(1, math.ceil(6.0 * math.log(1.0 / (eps * delta)) / eps))


class SwrHeavyHitterTracker:
    """Distributed l1 heavy-hitter tracking via sampling *with*
    replacement (the pre-Theorem 4 state of the art)."""

    def __init__(
        self,
        num_sites: int,
        eps: float,
        delta: float = 0.05,
        seed: Optional[int] = None,
        sample_size_override: Optional[int] = None,
        engine: Union[str, Engine, None] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        if not 0 < eps < 1:
            raise ConfigurationError(f"eps must be in (0,1), got {eps}")
        self.eps = eps
        self.delta = delta
        self.sample_size = (
            sample_size_override
            if sample_size_override is not None
            else coupon_collector_sample_size(eps, delta)
        )
        self._swr = DistributedWeightedSWR(
            num_sites,
            self.sample_size,
            seed=seed,
            engine=engine,
            batch_size=batch_size,
        )

    def process(self, site_id: int, item: Item) -> None:
        """Feed one arrival at one site."""
        self._swr.process(site_id, item)

    def run(self, stream: DistributedStream, **kwargs) -> MessageCounters:
        """Replay a whole distributed stream."""
        return self._swr.run(stream, **kwargs)

    def report_size(self) -> int:
        """Output budget, matched to Theorem 4's ``2/eps``."""
        return max(1, math.ceil(2.0 / self.eps))

    def heavy_hitters(self) -> List[Item]:
        """Distinct sampled items, heaviest first, top ``2/eps``.

        Contains every Definition 5 (plain eps-l1) heavy hitter with
        probability ``1-delta`` — but NOT the Definition 6 residual
        ones, since slots concentrate on the heaviest items.
        """
        distinct = {}
        for item in self._swr.sample():
            distinct[item.ident] = item
        report = sorted(distinct.values(), key=lambda it: -it.weight)
        return report[: self.report_size()]

    @property
    def counters(self) -> MessageCounters:
        return self._swr.counters

"""Guarantee checking for heavy-hitter reports.

Scores a reported identifier set against the exact Definition 5 / 6
targets computed by :mod:`repro.centralized.exact`.  Benchmarks report
recall (the quantity the theorems promise: recall 1 w.p. ``1-delta``)
and precision/size for context.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Sequence, Set

from ..centralized.exact import (
    exact_heavy_hitters,
    exact_residual_heavy_hitters,
)
from ..stream.item import Item

__all__ = ["HitterScore", "score_l1_report", "score_residual_report"]


class HitterScore(NamedTuple):
    """Evaluation of one heavy-hitter report."""

    recall: float  # fraction of true hitters reported (the guarantee)
    precision: float  # fraction of the report that is truly heavy
    true_count: int
    reported_count: int
    missed: Set[int]


def _score(reported_ids: Set[int], true_ids: Set[int]) -> HitterScore:
    if not true_ids:
        return HitterScore(1.0, 0.0 if reported_ids else 1.0, 0, len(reported_ids), set())
    hit = reported_ids & true_ids
    recall = len(hit) / len(true_ids)
    precision = len(hit) / len(reported_ids) if reported_ids else 0.0
    return HitterScore(recall, precision, len(true_ids), len(reported_ids), true_ids - reported_ids)


def score_l1_report(
    stream_prefix: Sequence[Item], reported: Iterable[Item], eps: float
) -> HitterScore:
    """Score against the classic Definition 5 targets.

    Identifiers must be unique per update (the generators guarantee it),
    so coordinates and identifiers coincide.
    """
    true_idx = exact_heavy_hitters(stream_prefix, eps)
    true_ids = {stream_prefix[i].ident for i in true_idx}
    return _score({item.ident for item in reported}, true_ids)


def score_residual_report(
    stream_prefix: Sequence[Item], reported: Iterable[Item], eps: float
) -> HitterScore:
    """Score against the residual Definition 6 targets."""
    true_idx, _residual = exact_residual_heavy_hitters(stream_prefix, eps)
    true_ids = {stream_prefix[i].ident for i in true_idx}
    return _score({item.ident for item in reported}, true_ids)

"""Residual heavy-hitter tracking (Theorem 4).

Definition 6: report every coordinate with
``w_i >= eps * ||x_tail(1/eps)||_1`` — heavy relative to the stream
*after* the top ``1/eps`` giants are removed.  This is strictly stronger
than the classic l1 guarantee (Definition 5) and is exactly where
sampling *without* replacement earns its keep: a with-replacement
sampler spends all its draws on the giants, while SWOR can sample each
giant at most once.

Theorem 4's recipe, implemented verbatim: run the weighted SWOR of
Theorem 3 with ``s = 6*ln(1/(eps*delta))/eps`` and answer queries with
the top ``2/eps`` sampled items by weight.
"""

from __future__ import annotations

import math
from typing import List, Optional, Union

from ..common.errors import ConfigurationError
from ..core.config import SworConfig
from ..core.protocol import DistributedWeightedSWOR
from ..net.counters import MessageCounters
from ..runtime import Engine
from ..stream.item import DistributedStream, Item

__all__ = ["ResidualHeavyHitterTracker", "theorem4_sample_size"]


def theorem4_sample_size(eps: float, delta: float) -> int:
    """The paper's ``s = 6 log(1/(delta*eps))/eps`` (Theorem 4 proof)."""
    if not 0 < eps < 1:
        raise ConfigurationError(f"eps must be in (0,1), got {eps}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must be in (0,1), got {delta}")
    return max(1, math.ceil(6.0 * math.log(1.0 / (delta * eps)) / eps))


class ResidualHeavyHitterTracker:
    """Continuously tracks eps-residual heavy hitters over ``k`` sites.

    Parameters
    ----------
    num_sites:
        ``k``.
    eps:
        Residual heaviness threshold (Definition 6).
    delta:
        Per-query failure probability.
    seed:
        Root seed for the underlying SWOR protocol.
    sample_size_override:
        Use a custom ``s`` instead of Theorem 4's (for ablations).
    engine / batch_size:
        Execution engine selection, forwarded to the underlying SWOR
        protocol (see :func:`repro.runtime.get_engine`).
    """

    def __init__(
        self,
        num_sites: int,
        eps: float,
        delta: float = 0.05,
        seed: Optional[int] = None,
        sample_size_override: Optional[int] = None,
        engine: Union[str, Engine, None] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        if not 0 < eps < 1:
            raise ConfigurationError(f"eps must be in (0,1), got {eps}")
        self.eps = eps
        self.delta = delta
        self.sample_size = (
            sample_size_override
            if sample_size_override is not None
            else theorem4_sample_size(eps, delta)
        )
        self._swor = DistributedWeightedSWOR(
            SworConfig(num_sites=num_sites, sample_size=self.sample_size),
            seed=seed,
            engine=engine,
            batch_size=batch_size,
        )

    # -- stream processing -------------------------------------------

    def process(self, site_id: int, item: Item) -> None:
        """Feed one arrival at one site."""
        self._swor.process(site_id, item)

    def run(self, stream: DistributedStream, **kwargs) -> MessageCounters:
        """Replay a whole distributed stream."""
        return self._swor.run(stream, **kwargs)

    # -- queries -------------------------------------------------------

    def report_size(self) -> int:
        """The ``O(1/eps)`` output size: the paper outputs the top
        ``2/eps`` sampled items by weight."""
        return max(1, math.ceil(2.0 / self.eps))

    def heavy_hitters(self) -> List[Item]:
        """Current report: top ``2/eps`` sampled items by weight.

        With probability ``1 - delta`` (per fixed time step) this set
        contains every eps-residual heavy hitter (Theorem 4).
        """
        sample = self._swor.sample()
        sample.sort(key=lambda item: -item.weight)
        return sample[: self.report_size()]

    def sample(self) -> List[Item]:
        """The raw underlying weighted SWOR (for diagnostics)."""
        return self._swor.sample()

    def sample_with_keys(self):
        """Underlying ``(item, key)`` pairs — estimator-ready (see
        :mod:`repro.query.estimators`)."""
        return self._swor.sample_with_keys()

    @property
    def protocol(self) -> DistributedWeightedSWOR:
        """The underlying Theorem 3 protocol (e.g. for shared-pass
        drivers that fuse same-config SWOR instances)."""
        return self._swor

    @property
    def counters(self) -> MessageCounters:
        """Message counters of the underlying protocol."""
        return self._swor.counters

"""The metrics registry: counters, gauges, histograms, spans.

A zero-dependency telemetry core for every engine in the package.  The
design goals, in order:

1. **Near-zero cost when disabled.**  Instrumented code holds a
   :data:`NULL_REGISTRY` by default; its ``enabled`` flag lets hot
   paths skip even the ``time.perf_counter()`` calls, and every handle
   it hands out is a shared no-op singleton.  An un-instrumented run
   pays one attribute load and one truthiness check per window — the
   ≤2% overhead bar in ``benchmarks/bench_obs.py`` pins the *enabled*
   cost too.
2. **Prometheus-compatible semantics.**  Monotonic counters (by
   convention named ``*_total`` or ``*_seconds_total``), gauges
   (last-write-wins — safe to re-export cumulative
   :class:`~repro.net.counters.MessageCounters` after every run), and
   histograms with **fixed bucket schemas** chosen at creation, so two
   registries with the same schema can always be merged.
3. **Mergeable snapshots.**  :meth:`MetricsRegistry.merge_snapshot`
   folds another registry's :meth:`~MetricsRegistry.snapshot` into this
   one (counters and histograms add, gauges overwrite) — how shard
   worker metrics reach the parent and how benchmark harnesses embed
   sub-run registries in their artifacts.

Usage::

    registry = MetricsRegistry()
    folds = registry.counter(
        "repro_folds_total", "coordinator folds", labels=("engine",)
    )
    folds.labels(engine="columnar").inc()
    with registry.span("fold", engine="columnar"):
        ...                       # observes repro_fold_seconds{engine=...}
    print(registry.exposition())  # Prometheus text format
    registry.snapshot()           # JSON-able dict

The registry is deliberately not thread-safe: every engine in this
package folds in a single parent thread, and worker *processes* keep
their own registries whose snapshots are merged at window commit.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..common.errors import ConfigurationError

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DURATION_BUCKETS",
    "SIZE_BUCKETS",
]

#: Fixed duration bucket schema (seconds): spans and run timings share
#: it so histograms from any two registries merge bucket-for-bucket.
DURATION_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

#: Fixed size bucket schema (counts/bytes, powers of 4).
SIZE_BUCKETS: Tuple[float, ...] = (
    1.0,
    4.0,
    16.0,
    64.0,
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
)

_RESERVED_LABELS = frozenset({"le", "quantile"})


def _check_name(name: str) -> None:
    if not name or not (name[0].isalpha() or name[0] in "_:"):
        raise ConfigurationError(f"invalid metric name {name!r}")
    for ch in name:
        if not (ch.isalnum() or ch in "_:"):
            raise ConfigurationError(f"invalid metric name {name!r}")


class _Counter:
    """One (family, label-values) counter cell."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; inc({amount}) rejected"
            )
        self.value += amount


class _Gauge:
    """One (family, label-values) gauge cell."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _Histogram:
    """One (family, label-values) histogram: fixed buckets + sum/count."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        # Linear scan beats bisect at these bucket counts, and most
        # observations (durations) land in the first few buckets.
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break


_KINDS = {"counter": _Counter, "gauge": _Gauge, "histogram": _Histogram}


class MetricFamily:
    """All cells of one metric name: a type, label names, children.

    An unlabeled family proxies its single child, so
    ``registry.counter("x_total").inc()`` works without a
    ``labels()`` hop.
    """

    __slots__ = ("name", "type", "help", "label_names", "buckets", "_children")

    def __init__(
        self,
        name: str,
        type_: str,
        help_: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        _check_name(name)
        for label in label_names:
            _check_name(label)
            if label in _RESERVED_LABELS:
                raise ConfigurationError(f"label {label!r} is reserved")
        self.name = name
        self.type = type_
        self.help = help_
        self.label_names = label_names
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], object] = {}

    def _make_child(self):
        if self.type == "histogram":
            return _Histogram(self.buckets)
        return _KINDS[self.type]()

    def labels(self, **labels: object):
        """The child cell for one label-value combination (created on
        first use).  Values are stringified, Prometheus-style."""
        if set(labels) != set(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def _solo(self):
        """The single unlabeled child (for label-free families)."""
        child = self._children.get(())
        if child is None:
            child = self._children[()] = self._make_child()
        return child

    # Unlabeled convenience surface — proxies the () child.
    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """``(label_values, cell)`` pairs in insertion order."""
        return list(self._children.items())


class _Span:
    """A timing context: observes its duration into a histogram cell."""

    __slots__ = ("_cell", "_t0", "seconds")

    def __init__(self, cell: _Histogram) -> None:
        self._cell = cell
        self._t0 = 0.0
        #: Duration of the last completed span (seconds).
        self.seconds = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._t0
        self._cell.observe(self.seconds)


class MetricsRegistry:
    """A live collection of metric families (see the module docstring)."""

    #: Hot paths check this before paying for clocks or label lookups.
    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -- declaration ----------------------------------------------------

    def _family(
        self,
        name: str,
        type_: str,
        help_: str,
        labels: Sequence[str],
        buckets: Optional[Iterable[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        label_names = tuple(labels)
        if family is not None:
            if family.type != type_:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {family.type}"
                )
            if family.label_names != label_names:
                raise ConfigurationError(
                    f"metric {name!r} already registered with labels "
                    f"{family.label_names}, got {label_names}"
                )
            return family
        bounds = None
        if type_ == "histogram":
            bounds = tuple(float(b) for b in (buckets or DURATION_BUCKETS))
            if list(bounds) != sorted(set(bounds)):
                raise ConfigurationError(
                    f"histogram {name!r} buckets must strictly increase"
                )
        family = MetricFamily(name, type_, help_, label_names, bounds)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Declare (or fetch) a monotonic counter family."""
        return self._family(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Declare (or fetch) a gauge family (last write wins)."""
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Iterable[float]] = None,
    ) -> MetricFamily:
        """Declare (or fetch) a histogram family with a fixed bucket
        schema (:data:`DURATION_BUCKETS` by default)."""
        return self._family(name, "histogram", help, labels, buckets)

    def span(self, name: str, **labels: object) -> _Span:
        """A ``with``-block timer observing ``repro_<name>_seconds``.

        ::

            with registry.span("fold", engine="columnar"):
                ...

        The histogram family is auto-declared with the standard
        duration buckets; its label names are fixed by the first call
        for a given span name.
        """
        family = self.histogram(
            f"repro_{name}_seconds",
            f"duration of {name} spans",
            labels=tuple(labels),
        )
        cell = family.labels(**labels) if labels else family._solo()
        return _Span(cell)

    # -- read side ------------------------------------------------------

    def families(self) -> List[MetricFamily]:
        """All families, sorted by name (the exposition order)."""
        return [self._families[name] for name in sorted(self._families)]

    def metric_names(self) -> List[str]:
        """Sorted family names — the surface the golden stability test
        in ``tests/test_obs.py`` pins."""
        return sorted(self._families)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-able snapshot of every family (see
        :func:`repro.obs.exposition.render_json`)."""
        out: Dict[str, object] = {}
        for family in self.families():
            samples = []
            for values, cell in family.samples():
                labels = dict(zip(family.label_names, values))
                if family.type == "histogram":
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": dict(
                                zip(
                                    [str(b) for b in cell.bounds],
                                    cell.bucket_counts,
                                )
                            ),
                            "sum": cell.sum,
                            "count": cell.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": cell.value})
            entry: Dict[str, object] = {
                "type": family.type,
                "help": family.help,
                "label_names": list(family.label_names),
                "samples": samples,
            }
            if family.type == "histogram":
                entry["bucket_bounds"] = list(family.buckets)
            out[family.name] = entry
        return {"metrics": out}

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters and histograms **add** (the other registry's activity
        accumulates here); gauges **overwrite** (last write wins).
        Histogram schemas must match exactly.
        """
        for name, entry in snapshot.get("metrics", {}).items():
            type_ = entry["type"]
            family = self._family(
                name,
                type_,
                entry.get("help", ""),
                tuple(entry.get("label_names", ())),
                buckets=entry.get("bucket_bounds"),
            )
            for sample in entry["samples"]:
                labels = sample.get("labels", {})
                cell = family.labels(**labels) if labels else family._solo()
                if type_ == "histogram":
                    bounds = [str(b) for b in family.buckets]
                    incoming = sample["buckets"]
                    if sorted(incoming) != sorted(bounds):
                        raise ConfigurationError(
                            f"histogram {name!r} bucket schema mismatch"
                        )
                    for i, bound in enumerate(bounds):
                        cell.bucket_counts[i] += incoming[bound]
                    cell.sum += sample["sum"]
                    cell.count += sample["count"]
                elif type_ == "counter":
                    cell.inc(sample["value"])
                else:
                    cell.set(sample["value"])

    def exposition(self) -> str:
        """The registry in Prometheus text exposition format."""
        from .exposition import render_prometheus

        return render_prometheus(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._families)} families)"


class _NullMetric:
    """The do-nothing handle every :class:`NullRegistry` call returns."""

    __slots__ = ()

    def labels(self, **labels: object) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullSpan:
    """A reusable no-op context manager (no clock reads)."""

    __slots__ = ()
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_METRIC = _NullMetric()
_NULL_SPAN = _NullSpan()


class NullRegistry:
    """The disabled registry: every operation is a shared no-op.

    Instrumented code never needs a None check — it calls the same
    surface and pays a few attribute loads.  ``enabled`` is False so
    hot paths can skip clock reads entirely.
    """

    enabled = False

    def counter(self, name, help="", labels=()):  # noqa: A002 - API parity
        return _NULL_METRIC

    def gauge(self, name, help="", labels=()):  # noqa: A002 - API parity
        return _NULL_METRIC

    def histogram(self, name, help="", labels=(), buckets=None):  # noqa: A002
        return _NULL_METRIC

    def span(self, name, **labels):
        return _NULL_SPAN

    def families(self):
        return []

    def metric_names(self):
        return []

    def snapshot(self):
        return {"metrics": {}}

    def merge_snapshot(self, snapshot) -> None:
        pass

    def exposition(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullRegistry()"


#: The process-wide disabled registry (a singleton: identity checks and
#: pickling across spawn both stay cheap and unambiguous).
NULL_REGISTRY = NullRegistry()

"""Observability: the unified telemetry plane.

A zero-dependency metrics core every layer of the package reports into:

* :class:`MetricsRegistry` — monotonic counters, gauges, histograms
  with fixed bucket schemas, label support, and a ``with
  registry.span("fold", ...)`` timing API
  (:mod:`repro.obs.registry`);
* :data:`NULL_REGISTRY` — the always-on default: a no-op registry so
  un-instrumented runs pay (nearly) nothing;
* Prometheus text and JSON exposition
  (:mod:`repro.obs.exposition`), surfaced by ``repro ...
  --metrics-out FILE`` and ``repro stats`` — and, eventually, the
  ``repro serve`` ``/metrics`` endpoint (ROADMAP item 1);
* bridges from the existing accounting —
  :class:`~repro.net.counters.MessageCounters` and the sharded
  engine's ``last_run_stats`` — onto registry metrics
  (:mod:`repro.obs.bridge`).

Attach a registry to any engine with
:meth:`~repro.runtime.base.Engine.instrument`::

    from repro.obs import MetricsRegistry
    from repro.runtime import get_engine

    registry = MetricsRegistry()
    engine = get_engine("sharded").instrument(registry)
    protocol = DistributedWeightedSWOR(config, seed=7, engine=engine)
    protocol.run(stream)
    print(registry.exposition())        # Prometheus text
    registry.snapshot()                 # JSON-able dict

Instrumentation is observational only: samples and message counters
are bit-identical with a live registry and with the null one, on every
engine (pinned by ``tests/test_obs.py``), and the measured overhead is
gated at ≤2% by ``benchmarks/bench_obs.py``.
"""

from .bridge import (
    WORKER_METRIC_NAMES,
    merge_worker_deltas,
    observe_degradation,
    observe_fault,
    observe_heartbeat_age,
    observe_message_counters,
    observe_recovery,
    observe_sharded_stats,
)
from .exposition import render_json, render_prometheus, write_metrics
from .registry import (
    DURATION_BUCKETS,
    NULL_REGISTRY,
    SIZE_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DURATION_BUCKETS",
    "SIZE_BUCKETS",
    "render_prometheus",
    "render_json",
    "write_metrics",
    "observe_message_counters",
    "observe_sharded_stats",
    "observe_fault",
    "observe_recovery",
    "observe_degradation",
    "observe_heartbeat_age",
    "merge_worker_deltas",
    "WORKER_METRIC_NAMES",
]

"""Exposition formats: Prometheus text and JSON snapshots.

Two renderings of one :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4), byte-deterministic for a given registry state, so
  the future ``repro serve`` ``/metrics`` endpoint (ROADMAP item 1)
  can return it verbatim and the golden tests can pin it exactly;
* :func:`render_json` — an indented JSON rendering of
  :meth:`~repro.obs.registry.MetricsRegistry.snapshot`, the form the
  benchmark harnesses embed in their ``BENCH_*.json`` artifacts.

:func:`write_metrics` picks the format from the file extension —
``.prom`` / ``.txt`` get Prometheus text, everything else JSON — which
is what ``repro ... --metrics-out FILE`` calls.
"""

from __future__ import annotations

import json
import math
from typing import List

__all__ = ["render_prometheus", "render_json", "write_metrics"]


def _format_value(value: float) -> str:
    """Prometheus-style number rendering: integral values lose the
    trailing ``.0``; non-finite values use the +Inf/-Inf/NaN spellings."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - nothing emits NaN today
        return "NaN"
    if value == int(value) and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _label_block(names, values, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type}")
        names = family.label_names
        for values, cell in family.samples():
            if family.type == "histogram":
                cumulative = 0
                for bound, count in zip(cell.bounds, cell.bucket_counts):
                    cumulative += count
                    block = _label_block(
                        names, values, f'le="{_format_value(bound)}"'
                    )
                    lines.append(
                        f"{family.name}_bucket{block} {cumulative}"
                    )
                block = _label_block(names, values, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{block} {cell.count}")
                block = _label_block(names, values)
                lines.append(
                    f"{family.name}_sum{block} {_format_value(cell.sum)}"
                )
                lines.append(f"{family.name}_count{block} {cell.count}")
            else:
                block = _label_block(names, values)
                lines.append(
                    f"{family.name}{block} {_format_value(cell.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(registry) -> str:
    """Render a registry snapshot as deterministic, indented JSON."""
    return json.dumps(registry.snapshot(), indent=2, sort_keys=True)


def write_metrics(registry, path: str) -> str:
    """Write a registry to ``path``; the extension picks the format.

    ``.prom`` and ``.txt`` get the Prometheus text format, anything
    else the JSON snapshot.  Returns the format written (``"prometheus"``
    or ``"json"``) so callers can report it.
    """
    lower = path.lower()
    if lower.endswith((".prom", ".txt")):
        body, fmt = render_prometheus(registry), "prometheus"
    else:
        body, fmt = render_json(registry) + "\n", "json"
    with open(path, "w") as fh:
        fh.write(body)
    return fmt

"""Bridges from existing accounting onto the metrics registry.

The package already measures a lot — every run produces a
:class:`~repro.net.counters.MessageCounters`, and the sharded engine
keeps a ``last_run_stats`` dict — but none of it was exported in a
scrape-able form.  This module maps those structures onto registry
metrics **without changing their public shapes**:

* :func:`observe_message_counters` — message totals / words / per-kind
  counts as gauges (counters are cumulative per network, so last-write
  gauges re-export safely after every run);
* :func:`observe_sharded_stats` — the sharded engine's
  ``last_run_stats`` (windows, rollbacks, speculation verdicts,
  unordered folds, phase timings) as counters, so the dict and the
  registry can never drift: one is computed from the other's inputs.

The name mapping is documented in the README's "Observability" section
and pinned by the golden metric-name test in ``tests/test_obs.py``.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "observe_message_counters",
    "observe_sharded_stats",
    "observe_fault",
    "observe_recovery",
    "observe_degradation",
    "observe_heartbeat_age",
    "merge_worker_deltas",
    "WORKER_METRIC_NAMES",
]

#: The fixed schema of the per-window metric columns a shard worker
#: ships back with its results (see ``repro.runtime.sharded``): a flat
#: value vector in this exact order, merged into the parent registry as
#: ``repro_shard_worker_<name>_total{worker=...}`` at window commit.
WORKER_METRIC_NAMES = (
    "windows",
    "packs",
    "pack_entries",
    "ring_bytes",
    "compute_seconds",
    "snapshots",
    "rolls_served",
    "spec_recomputes",
    "replay_windows",
)


def observe_message_counters(registry, counters, engine: str) -> None:
    """Export one network's cumulative message accounting.

    Gauge semantics (set, not inc): ``MessageCounters`` accumulate
    across ``run()`` calls on a reused network, so re-exporting after
    every run stays idempotent.
    """
    if not registry.enabled:
        return
    messages = registry.gauge(
        "repro_messages",
        "cumulative protocol messages by direction (the paper's metric)",
        labels=("engine", "direction"),
    )
    messages.labels(engine=engine, direction="upstream").set(counters.upstream)
    messages.labels(engine=engine, direction="downstream").set(
        counters.downstream
    )
    registry.gauge(
        "repro_message_words",
        "cumulative machine words carried by all counted messages",
        labels=("engine",),
    ).labels(engine=engine).set(counters.words)
    registry.gauge(
        "repro_message_words_max",
        "largest single message seen, in words (Proposition 7 audit)",
        labels=("engine",),
    ).labels(engine=engine).set(counters.max_message_words)
    by_kind = registry.gauge(
        "repro_messages_by_kind",
        "cumulative protocol messages by kind",
        labels=("engine", "kind"),
    )
    for kind, count in counters.by_kind.items():
        by_kind.labels(engine=engine, kind=kind).set(count)


def observe_sharded_stats(registry, stats: Dict[str, object]) -> None:
    """Export one sharded run's ``last_run_stats`` onto the registry.

    Name mapping (each counter *adds* the run's delta, so a long-lived
    engine accumulates across runs):

    ==============================  =====================================
    ``last_run_stats`` key           metric
    ==============================  =====================================
    ``windows``                      ``repro_shard_windows_total``
    ``rollbacks``                    ``repro_shard_rollbacks_total``
    ``controls``                     ``repro_shard_controls_total``
    ``speculation.hits``             ``repro_shard_speculation_total{verdict="hit"}``
    ``speculation.misses``           ``repro_shard_speculation_total{verdict="miss"}``
    ``unordered_folds``              ``repro_shard_unordered_folds_total``
    ``ordered_refolds``              ``repro_shard_ordered_refolds_total``
    ``timing.<phase>_seconds``       ``repro_shard_phase_seconds_total{phase=...}``
    ==============================  =====================================
    """
    if not registry.enabled or stats.get("mode") != "sharded":
        return
    registry.counter(
        "repro_shard_windows_total", "batch windows folded by the parent"
    ).inc(stats.get("windows", 0))
    registry.counter(
        "repro_shard_rollbacks_total",
        "mid-window broadcasts that forced a worker suffix rollback",
    ).inc(stats.get("rollbacks", 0))
    registry.counter(
        "repro_shard_controls_total",
        "control messages carried by window commits",
    ).inc(stats.get("controls", 0))
    speculation = stats.get("speculation")
    if speculation is not None:
        verdicts = registry.counter(
            "repro_shard_speculation_total",
            "speculative window verdicts at commit",
            labels=("verdict",),
        )
        verdicts.labels(verdict="hit").inc(speculation["hits"])
        verdicts.labels(verdict="miss").inc(speculation["misses"])
    if "unordered_folds" in stats:
        registry.counter(
            "repro_shard_unordered_folds_total",
            "packs committed in arrival order (proved order-invariant)",
        ).inc(stats["unordered_folds"])
        registry.counter(
            "repro_shard_ordered_refolds_total",
            "windows rewound and refolded in exact site order",
        ).inc(stats["ordered_refolds"])
    timing = stats.get("timing") or {}
    phases = registry.counter(
        "repro_shard_phase_seconds_total",
        "cumulative seconds per sharded pipeline phase",
        labels=("phase",),
    )
    for key, seconds in timing.items():
        phases.labels(phase=key.replace("_seconds", "")).inc(seconds)
    per_window = stats.get("per_window") or ()
    if per_window:
        window_hist = registry.histogram(
            "repro_shard_window_seconds",
            "per-window phase durations across the run",
            labels=("phase",),
        )
        for entry in per_window:
            for key, value in entry.items():
                if key.endswith("_seconds"):
                    window_hist.labels(phase=key[:-8]).observe(value)


def observe_fault(registry, fault_class: str) -> None:
    """Count one classified worker fault (``crash``/``hang``/``poison``)
    detected by the sharded supervisor."""
    if not registry.enabled:
        return
    registry.counter(
        "repro_shard_faults_total",
        "worker faults classified by the sharded supervisor",
        labels=("fault_class",),
    ).labels(fault_class=fault_class).inc()


def observe_recovery(registry, worker: int, seconds: float) -> None:
    """Record one completed window-boundary recovery (respawn + state
    re-ship + replay + survivor rewind) and its wall-clock cost."""
    if not registry.enabled:
        return
    registry.counter(
        "repro_shard_worker_restarts_total",
        "shard workers respawned by the supervisor after a fault",
        labels=("worker",),
    ).labels(worker=worker).inc()
    registry.histogram(
        "repro_shard_recovery_seconds",
        "wall-clock seconds per deterministic worker recovery",
    ).observe(seconds)


def observe_degradation(registry, rung: str) -> None:
    """Count one rung taken on the graceful-degradation ladder
    (``lockstep`` or ``columnar``) after recovery was exhausted or
    unavailable."""
    if not registry.enabled:
        return
    registry.counter(
        "repro_shard_degradations_total",
        "sharded runs degraded to a slower rung after fault recovery "
        "was exhausted",
        labels=("rung",),
    ).labels(rung=rung).inc()


def observe_heartbeat_age(registry, worker: int, seconds: float) -> None:
    """Export one worker's heartbeat age (seconds since its last
    message reached the supervisor; refreshed at every window commit)."""
    if not registry.enabled:
        return
    registry.gauge(
        "repro_shard_worker_heartbeat_age_seconds",
        "seconds since each shard worker's last message, at last export",
        labels=("worker",),
    ).labels(worker=worker).set(seconds)


def merge_worker_deltas(registry, worker: int, deltas) -> None:
    """Fold one worker's per-window metric columns into the registry.

    ``deltas`` is the flat value vector matching
    :data:`WORKER_METRIC_NAMES` position for position (the wire form a
    worker appends to its result messages when metrics are enabled).
    """
    for name, value in zip(WORKER_METRIC_NAMES, deltas):
        if value:
            registry.counter(
                f"repro_shard_worker_{name}_total",
                f"per-worker {name.replace('_', ' ')} (shipped as columns "
                "with window results, merged at commit)",
                labels=("worker",),
            ).labels(worker=worker).inc(value)

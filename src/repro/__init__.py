"""repro — Weighted Reservoir Sampling from Distributed Streams.

A full reproduction of Jayaram, Sharma, Tirthapura & Woodruff,
"Weighted Reservoir Sampling from Distributed Streams" (PODS 2019,
arXiv:1904.04126): the message-optimal distributed weighted sampler
without replacement (Theorem 3), its with-replacement counterpart
(Corollary 1), residual heavy-hitter tracking (Theorem 4), and optimal
L1 tracking (Theorem 6), together with the substrates they run on —
a synchronous coordinator/sites network simulator, workload generators
(including the lower-bound adversarial streams of Theorems 5 and 7),
and the centralized samplers the protocols are validated against.

Quickstart::

    import random
    from repro import DistributedWeightedSWOR, SworConfig
    from repro.stream import zipf_stream, round_robin

    stream = round_robin(zipf_stream(100_000, random.Random(0)), 32)
    protocol = DistributedWeightedSWOR(
        SworConfig(num_sites=32, sample_size=64), seed=1
    )
    counters = protocol.run(stream)
    print(protocol.sample())        # weighted SWOR, valid at every step
    print(counters.total)           # ~ k * log(W/s) / log(1 + k/s)
"""

from .common import (
    ConfigurationError,
    InvalidWeightError,
    ProtocolViolationError,
    RandomSource,
    ReproError,
)
from .core import (
    DistributedUnweightedSWOR,
    DistributedWeightedSWOR,
    DistributedWeightedSWR,
    PerSiteTopS,
    SendEverything,
    SworConfig,
)
from .heavy_hitters import ResidualHeavyHitterTracker, theorem4_sample_size
from .l1 import (
    DeterministicCounterTracker,
    HyzStyleTracker,
    L1Tracker,
    theorem6_duplication,
    theorem6_sample_size,
)
from .net import MessageCounters, Network
from .query import Estimate, MultiQueryDriver, QueryCatalog
from .runtime import (
    BatchedEngine,
    ColumnarEngine,
    Engine,
    ReferenceEngine,
    get_engine,
)
from .stream import ColumnarStream, DistributedStream, Item

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors / utilities
    "ReproError",
    "ConfigurationError",
    "InvalidWeightError",
    "ProtocolViolationError",
    "RandomSource",
    # stream & network
    "Item",
    "DistributedStream",
    "ColumnarStream",
    "Network",
    "MessageCounters",
    # runtime engines
    "Engine",
    "ReferenceEngine",
    "BatchedEngine",
    "ColumnarEngine",
    "get_engine",
    # core protocols
    "SworConfig",
    "DistributedWeightedSWOR",
    "DistributedWeightedSWR",
    "DistributedUnweightedSWOR",
    "SendEverything",
    "PerSiteTopS",
    # applications
    "ResidualHeavyHitterTracker",
    "theorem4_sample_size",
    "L1Tracker",
    "theorem6_sample_size",
    "theorem6_duplication",
    "DeterministicCounterTracker",
    "HyzStyleTracker",
    # query & estimation subsystem
    "Estimate",
    "QueryCatalog",
    "MultiQueryDriver",
]

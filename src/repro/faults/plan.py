"""Declarative, deterministic fault injection for the sharded runtime.

A :class:`FaultPlan` is a small list of :class:`FaultSpec` entries, each
naming a fault *kind*, the worker it strikes, and the window at which it
fires.  The plan is threaded through test-only seams in the sharded
engine: worker-side seams fire just before/instead of a result send
(``kill``/``hang``/``drop``), on the encoded wire descriptors
(``corrupt``/``truncate``), or on the pipelined commit ack
(``stall_ack``); the one parent-side kind (``respawn``) makes the
supervisor's worker respawn fail a fixed number of times before
succeeding.

Everything here is deterministic by construction: firing is keyed on
(worker, window) — never on wall-clock time — and the only randomness
is the seeded :class:`random.Random` behind :meth:`FaultPlan.single`.
The package deliberately never imports :mod:`time` (reprolint R004:
``repro.faults`` is not a clock-allowed layer); the ``hang`` kind
blocks on an un-signalled :class:`threading.Event` instead of sleeping.
"""

from __future__ import annotations

import os
import random
import threading
from typing import Iterable, List, Optional, Sequence, Tuple

from ..common.errors import ConfigurationError

__all__ = [
    "CHAOS_EXITCODE",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "block_forever",
    "chaos_exit",
    "corrupt_descriptors",
    "fault_action",
    "parse_fault_plan",
]

#: Exit status a ``kill`` fault dies with — distinguishable from a real
#: interpreter crash in the supervisor's fault detail.
CHAOS_EXITCODE = 73

#: Worker-side kinds fire at (worker, window); ``respawn`` is
#: parent-side and its third field counts injected respawn failures.
FAULT_KINDS = (
    "kill",  # os._exit before sending the window's results
    "hang",  # block forever before sending the window's results
    "drop",  # silently skip the result send (parent sees a hang)
    "corrupt",  # mangle a pack descriptor so wire validation rejects it
    "truncate",  # point a pack descriptor past its buffer
    "stall_ack",  # pipelined only: never answer the commit ack
    "respawn",  # parent-side: fail the next N respawns of this worker
)


class FaultSpec:
    """One planned fault: ``kind`` strikes ``worker`` at ``window``.

    For ``kind == "respawn"`` the ``window`` field instead carries the
    number of consecutive respawn attempts to fail.
    """

    __slots__ = ("kind", "worker", "window")

    def __init__(self, kind: str, worker: int, window: int) -> None:
        if kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        if worker < 0:
            raise ConfigurationError(f"fault worker must be >= 0, got {worker}")
        if window < 0:
            raise ConfigurationError(f"fault window must be >= 0, got {window}")
        self.kind = kind
        self.worker = worker
        self.window = window

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSpec({self.kind!r}, worker={self.worker}, window={self.window})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FaultSpec)
            and other.kind == self.kind
            and other.worker == self.worker
            and other.window == self.window
        )

    def __str__(self) -> str:
        return f"{self.kind}:{self.worker}:{self.window}"


class FaultPlan:
    """An ordered set of planned faults for one sharded run.

    The engine clones the plan per run (so a plan on a long-lived
    engine re-fires every run) and mutates the clone as faults fire:
    when the supervisor handles a fault of worker ``w`` at window
    ``u``, every worker-side entry for ``w`` at windows ``<= u`` is
    retired, and the *remaining* entries are what a respawned worker
    (or a degradation-ladder rerun) receives — each planned fault
    therefore fires at most once per run, including across recoveries.
    """

    def __init__(self, entries: Iterable[FaultSpec] = ()) -> None:
        self.entries: List[FaultSpec] = list(entries)
        for entry in self.entries:
            if not isinstance(entry, FaultSpec):
                raise ConfigurationError(
                    f"FaultPlan entries must be FaultSpec, got {entry!r}"
                )

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and other.entries == self.entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.entries!r})"

    def __str__(self) -> str:
        return ",".join(str(entry) for entry in self.entries)

    def clone(self) -> "FaultPlan":
        return FaultPlan(
            FaultSpec(e.kind, e.worker, e.window) for e in self.entries
        )

    def wire_for(self, worker: int) -> Tuple[Tuple[str, int], ...]:
        """The (kind, window) pairs shipped in ``worker``'s payload —
        its still-pending worker-side faults."""
        return tuple(
            (e.kind, e.window)
            for e in self.entries
            if e.worker == worker and e.kind != "respawn"
        )

    def mark_fired(self, worker: int, window: Optional[int]) -> None:
        """Retire ``worker``'s worker-side entries up to ``window``
        (all of them when ``window`` is None) after the supervisor has
        classified a fault there."""
        self.entries = [
            e
            for e in self.entries
            if e.kind == "respawn"
            or e.worker != worker
            or (window is not None and e.window > window)
        ]

    def take_respawn_failure(self, worker: int) -> bool:
        """Consume one injected respawn failure for ``worker`` if the
        plan has any left; True means the supervisor must fail this
        respawn attempt."""
        for entry in self.entries:
            if entry.kind == "respawn" and entry.worker == worker:
                if entry.window <= 1:
                    self.entries.remove(entry)
                else:
                    entry.window -= 1
                return True
        return False

    @classmethod
    def single(
        cls,
        seed: int,
        workers: int,
        windows: int,
        kinds: Sequence[str] = ("kill", "hang", "drop", "corrupt", "truncate"),
    ) -> "FaultPlan":
        """A seeded one-fault plan: pick (kind, worker, window)
        uniformly from the given ranges — the chaos suite's property
        tests draw these."""
        rng = random.Random(seed)
        return cls(
            [
                FaultSpec(
                    rng.choice(list(kinds)),
                    rng.randrange(max(1, workers)),
                    rng.randrange(max(1, windows)),
                )
            ]
        )


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse the ``--fault-plan`` CLI form: comma-separated
    ``kind:worker:window`` triples (for ``respawn`` the third field is
    the failure count), e.g. ``"kill:1:2,respawn:1:1"``."""
    entries = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        if len(pieces) != 3:
            raise ConfigurationError(
                f"fault plan entry {part!r} is not kind:worker:window"
            )
        kind = pieces[0].strip()
        try:
            worker, window = int(pieces[1]), int(pieces[2])
        except ValueError:
            raise ConfigurationError(
                f"fault plan entry {part!r} has non-integer fields"
            ) from None
        entries.append(FaultSpec(kind, worker, window))
    return FaultPlan(entries)


# ---------------------------------------------------------------------------
# Worker-side injection helpers (called from the sharded worker loops)
# ---------------------------------------------------------------------------


def fault_action(
    faults: Optional[Sequence[Tuple[str, int]]],
    window: int,
    kinds: Tuple[str, ...],
) -> Optional[str]:
    """First planned fault of one of ``kinds`` at ``window``, or None."""
    if not faults:
        return None
    for kind, at in faults:
        if at == window and kind in kinds:
            return kind
    return None


def block_forever() -> None:  # pragma: no cover - killed by the parent
    """Simulate a hung worker: block on an event nobody signals.  The
    supervisor's deadline fires and the process is terminated; no
    wall-clock reads, no spinning."""
    threading.Event().wait()


def chaos_exit() -> None:  # pragma: no cover - exits the process
    """Simulate a worker crash: die instantly, skipping ``finally``
    blocks and atexit handlers, exactly like a SIGKILLed process."""
    os._exit(CHAOS_EXITCODE)


def corrupt_descriptors(descriptors: list, mode: str) -> list:
    """Mangle the first pack descriptor in a worker's result list so
    the parent's wire validation rejects it (``mode == "corrupt"``:
    drop a column, leaving an incomplete half; ``mode == "truncate"``:
    inflate a ring column's count past the buffer).  When the window
    shipped no pack descriptors, a forged undecodable one is appended
    so the fault still fires deterministically.  Mutates and returns
    ``descriptors``."""
    for i, descriptor in enumerate(descriptors):
        tag = descriptor[1]
        if tag == "p":
            site_id, _, kind, spec = descriptor
            spec = dict(spec)
            name = next(iter(spec))
            if mode == "truncate":
                offset, dtype, count = spec[name]
                spec[name] = (offset, dtype, count + (1 << 24))
            else:
                del spec[name]
            descriptors[i] = (site_id, "p", kind, spec)
            return descriptors
        if tag == "q":
            site_id, _, kind, columns = descriptor
            columns = dict(columns)
            name = next(iter(columns))
            if mode == "truncate":
                columns[name] = columns[name][:-1]
            else:
                del columns[name]
            descriptors[i] = (site_id, "q", kind, columns)
            return descriptors
    descriptors.append((-1, "q", "regular", {"regular_idents": []}))
    return descriptors

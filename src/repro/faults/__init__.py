"""Chaos-injection harness for the fault-tolerant sharded runtime.

See :mod:`repro.faults.plan` for the declarative :class:`FaultPlan`
and the worker/parent injection seams; ``tests/test_chaos.py`` is the
consumer.  Plans are passed to the engine via
``ShardedEngine(fault_plan=...)``, ``get_engine(..., fault_plan=...)``
or the ``--fault-plan`` debug CLI flag.
"""

from .plan import (
    CHAOS_EXITCODE,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    block_forever,
    chaos_exit,
    corrupt_descriptors,
    fault_action,
    parse_fault_plan,
)

__all__ = [
    "CHAOS_EXITCODE",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "block_forever",
    "chaos_exit",
    "corrupt_descriptors",
    "fault_action",
    "parse_fault_plan",
]

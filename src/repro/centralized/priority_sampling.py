"""Priority sampling (Duffield–Lund–Thorup [17]).

The paper cites priority sampling as the network-monitoring cousin of
precision sampling: key ``q = w/u`` with uniform ``u``, keep the top
``s`` keys, and estimate any subset's total weight as
``sum over sampled subset members of max(w, tau)`` where ``tau`` is the
``(s+1)``-st largest key.  The estimator is unbiased.

Included as a substrate baseline: the examples use it for subset-sum
queries over the same streams, and tests verify unbiasedness — which
also cross-validates our key machinery, since priority and precision
sampling differ only in the key's denominator distribution.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Callable, List, Tuple

from ..common.errors import ConfigurationError, InvalidWeightError
from ..stream.item import Item

__all__ = ["PrioritySampler"]


class PrioritySampler:
    """Streaming priority sample of size ``s`` with subset-sum estimates."""

    def __init__(self, sample_size: int, rng: random.Random) -> None:
        if sample_size <= 0:
            raise ConfigurationError(
                f"sample size must be positive, got {sample_size}"
            )
        self.sample_size = sample_size
        self._rng = rng
        # Min-heap keeps the top (s+1) priorities; the smallest of those
        # is the threshold tau.
        self._heap: List[Tuple[float, int, Item]] = []
        self._counter = 0
        self.items_seen = 0
        self.weight_seen = 0.0

    def insert(self, item: Item) -> None:
        """Process one stream item."""
        w = item.weight
        if not math.isfinite(w) or w <= 0.0:
            raise InvalidWeightError(f"invalid weight {w} for item {item.ident}")
        self.items_seen += 1
        self.weight_seen += w
        u = self._rng.random()
        while u <= 0.0:
            u = self._rng.random()
        priority = w / u
        entry = (priority, self._counter, item)
        self._counter += 1
        if len(self._heap) < self.sample_size + 1:
            heapq.heappush(self._heap, entry)
        elif priority > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    @property
    def threshold(self) -> float:
        """``tau``: the ``(s+1)``-st largest priority (0 while underfull)."""
        if len(self._heap) <= self.sample_size:
            return 0.0
        return self._heap[0][0]

    def sample_with_weights(self) -> List[Tuple[Item, float]]:
        """The top-``s`` items with their *estimation* weights
        ``max(w, tau)`` — each an unbiased account of the items it
        stands for."""
        tau = self.threshold
        entries = sorted(self._heap, key=lambda e: -e[0])[: self.sample_size]
        return [(e[2], max(e[2].weight, tau)) for e in entries]

    def subset_sum(self, predicate: Callable[[Item], bool]) -> float:
        """Unbiased estimate of the total weight of items satisfying
        ``predicate``."""
        return sum(w for item, w in self.sample_with_weights() if predicate(item))

    def total_weight_estimate(self) -> float:
        """Estimate of the full stream weight (predicate ``True``)."""
        return self.subset_sum(lambda _: True)

    def __len__(self) -> int:
        return min(len(self._heap), self.sample_size)

"""Centralized weighted SWOR — the Efraimidis–Spirakis reservoir [18].

The one-pass algorithm the paper distributes: give every item a key and
keep the top ``s``.  Two equivalent key parameterizations are provided:

* **exponential keys** ``v = w/t`` with ``t ~ Exp(1)`` — the paper's
  precision-sampling form (Proposition 1); *larger* keys win;
* **ES keys** ``u^{1/w}`` with ``u ~ U(0,1)`` — the original [18] form;
  the two are monotone transforms of each other
  (``u^{1/w} = e^{-t/w}`` is increasing in ``w/t``).

This module is both a baseline (what a single site would do) and the
*correctness oracle*: the distributed protocol must produce samples with
exactly this distribution.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import List, Optional, Tuple

from ..common.errors import ConfigurationError, InvalidWeightError
from ..common.rng import exponential
from ..stream.item import Item

__all__ = ["WeightedReservoirSWOR", "SkipWeightedReservoirSWOR"]


class WeightedReservoirSWOR:
    """Streaming weighted sample *without* replacement of size ``s``.

    Maintains the items with the ``s`` largest exponential keys in a
    min-heap; insertion is ``O(log s)``.

    Parameters
    ----------
    sample_size:
        Target sample size ``s``.
    rng:
        Randomness source (one key per item).
    """

    def __init__(self, sample_size: int, rng: random.Random) -> None:
        if sample_size <= 0:
            raise ConfigurationError(
                f"sample size must be positive, got {sample_size}"
            )
        self.sample_size = sample_size
        self._rng = rng
        # Min-heap of (key, insertion_counter, item); the root is the
        # s-th largest key — the paper's threshold u.
        self._heap: List[Tuple[float, int, Item]] = []
        self._counter = 0
        self.items_seen = 0
        self.weight_seen = 0.0

    def insert(self, item: Item) -> Optional[float]:
        """Process one stream item; returns its key if it was accepted.

        The key is ``w/t`` with a fresh ``t ~ Exp(1)``.  ``None`` means
        the item's key fell below the current threshold and the sample
        did not change.
        """
        w = item.weight
        if not math.isfinite(w) or w <= 0.0:
            raise InvalidWeightError(f"invalid weight {w} for item {item.ident}")
        self.items_seen += 1
        self.weight_seen += w
        key = w / exponential(self._rng)
        return self.offer_with_key(item, key)

    def offer_with_key(self, item: Item, key: float) -> Optional[float]:
        """Offer an item with an externally-generated key.

        Used by the distributed coordinator, which receives keys
        generated at the sites.
        """
        entry = (key, self._counter, item)
        self._counter += 1
        if len(self._heap) < self.sample_size:
            heapq.heappush(self._heap, entry)
            return key
        if key <= self._heap[0][0]:
            return None
        heapq.heapreplace(self._heap, entry)
        return key

    @property
    def threshold(self) -> float:
        """The ``s``-th largest key (0 while the sample is underfull)."""
        if len(self._heap) < self.sample_size:
            return 0.0
        return self._heap[0][0]

    def sample(self) -> List[Item]:
        """Current sample, in decreasing key order."""
        return [e[2] for e in sorted(self._heap, key=lambda e: -e[0])]

    def sample_with_keys(self) -> List[Tuple[Item, float]]:
        """Current sample as ``(item, key)`` pairs, decreasing keys."""
        return [(e[2], e[0]) for e in sorted(self._heap, key=lambda e: -e[0])]

    def __len__(self) -> int:
        return len(self._heap)


class SkipWeightedReservoirSWOR:
    """The A-ExpJ skip-optimized variant of Efraimidis–Spirakis.

    Instead of one random key per item, draws how much *cumulative
    weight* to skip before the next sample change — expected
    ``O(s log(n/s))`` random draws over the stream.  Produces the same
    sample law; used by performance tests to cross-check the plain
    implementation and by large-stream examples.
    """

    def __init__(self, sample_size: int, rng: random.Random) -> None:
        if sample_size <= 0:
            raise ConfigurationError(
                f"sample size must be positive, got {sample_size}"
            )
        self.sample_size = sample_size
        self._rng = rng
        self._heap: List[Tuple[float, int, Item]] = []
        self._counter = 0
        self._skip_weight = 0.0  # weight to pass before next insertion
        self.items_seen = 0
        self.weight_seen = 0.0

    def _draw_skip(self) -> None:
        """Draw the weight to skip until the next reservoir change.

        With threshold key ``T`` (in ES ``u^{1/w}`` form ``e^{-t}``
        transformed), the waiting weight is exponential; following [18],
        ``X = log(U)/log(T_es)`` in ES-key space.  We work directly in
        exponential-key space: an item of weight ``w`` beats threshold
        ``v*`` with probability ``1 - e^{-w/v*}``; the cumulative weight
        until a success is Exp(1/v*).
        """
        v_star = self._heap[0][0]
        self._skip_weight = exponential(self._rng) * v_star

    def insert(self, item: Item) -> Optional[float]:
        """Process one stream item; returns the new key on acceptance."""
        w = item.weight
        if not math.isfinite(w) or w <= 0.0:
            raise InvalidWeightError(f"invalid weight {w} for item {item.ident}")
        self.items_seen += 1
        self.weight_seen += w
        if len(self._heap) < self.sample_size:
            key = w / exponential(self._rng)
            heapq.heappush(self._heap, (key, self._counter, item))
            self._counter += 1
            if len(self._heap) == self.sample_size:
                self._draw_skip()
            return key
        if w < self._skip_weight:
            self._skip_weight -= w
            return None
        # This item crosses the skip boundary: it replaces the minimum.
        # Its key is drawn conditioned on beating the threshold v*:
        # key = w / t with t ~ Exp(1) | t < w/v*.
        v_star = self._heap[0][0]
        bound = w / v_star
        u = self._rng.random()
        t = -math.log1p(u * math.expm1(-bound))
        t = min(t, bound * (1 - 1e-12))
        key = w / t
        heapq.heapreplace(self._heap, (key, self._counter, item))
        self._counter += 1
        self._draw_skip()
        return key

    @property
    def threshold(self) -> float:
        if len(self._heap) < self.sample_size:
            return 0.0
        return self._heap[0][0]

    def sample(self) -> List[Item]:
        """Current sample, in decreasing key order."""
        return [e[2] for e in sorted(self._heap, key=lambda e: -e[0])]

    def __len__(self) -> int:
        return len(self._heap)

"""Classic centralized reservoirs: Vitter's Algorithm R and weighted SWR.

These are the 1960s–80s ancestors the paper generalizes (Section 1.3):

* :class:`UnweightedReservoir` — Waterman/Vitter Algorithm R, uniform
  sample without replacement, ``O(1)`` per item;
* :class:`WeightedReservoirSWR` — weighted sampling *with* replacement
  via ``s`` independent single-item samplers (Chao's rule: replace the
  slot with probability ``w/W_t``), the centralized analogue of the
  paper's Corollary 1 reduction.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from ..common.errors import ConfigurationError, InvalidWeightError
from ..stream.item import Item

__all__ = ["UnweightedReservoir", "WeightedReservoirSWR"]


class UnweightedReservoir:
    """Vitter's Algorithm R: uniform SWOR of size ``s``, O(s) space."""

    def __init__(self, sample_size: int, rng: random.Random) -> None:
        if sample_size <= 0:
            raise ConfigurationError(
                f"sample size must be positive, got {sample_size}"
            )
        self.sample_size = sample_size
        self._rng = rng
        self._reservoir: List[Item] = []
        self.items_seen = 0

    def insert(self, item: Item) -> bool:
        """Process one item; returns whether the reservoir changed."""
        self.items_seen += 1
        if len(self._reservoir) < self.sample_size:
            self._reservoir.append(item)
            return True
        j = self._rng.randrange(self.items_seen)
        if j < self.sample_size:
            self._reservoir[j] = item
            return True
        return False

    def sample(self) -> List[Item]:
        """The current uniform sample (arbitrary order)."""
        return list(self._reservoir)

    def __len__(self) -> int:
        return len(self._reservoir)


class WeightedReservoirSWR:
    """Weighted sample *with* replacement of size ``s``.

    Each of the ``s`` slots independently holds a single weighted
    random item of the prefix: on arrival of ``(e, w)`` with running
    total ``W``, the slot adopts the item with probability ``w/W``
    (Chao 1982).  By induction each slot holds item ``i`` with
    probability ``w_i / W`` — exactly Definition 2.

    This sampler is the foil in the residual-heavy-hitter experiments:
    on skewed streams all ``s`` slots collapse onto the few giants.
    """

    def __init__(self, sample_size: int, rng: random.Random) -> None:
        if sample_size <= 0:
            raise ConfigurationError(
                f"sample size must be positive, got {sample_size}"
            )
        self.sample_size = sample_size
        self._rng = rng
        self._slots: List[Optional[Item]] = [None] * sample_size
        self.weight_seen = 0.0
        self.items_seen = 0

    def insert(self, item: Item) -> int:
        """Process one item; returns how many slots adopted it."""
        w = item.weight
        if not math.isfinite(w) or w <= 0.0:
            raise InvalidWeightError(f"invalid weight {w} for item {item.ident}")
        self.items_seen += 1
        self.weight_seen += w
        p = w / self.weight_seen
        changed = 0
        for i in range(self.sample_size):
            if self._rng.random() < p:
                self._slots[i] = item
                changed += 1
        return changed

    def sample(self) -> List[Item]:
        """The current with-replacement sample (one entry per slot)."""
        return [slot for slot in self._slots if slot is not None]

    def __len__(self) -> int:
        return sum(1 for slot in self._slots if slot is not None)

"""Offline exact oracles for evaluating the streaming algorithms.

Ground truth for every experiment: exact per-identifier totals, exact
residual tail weight ``||x_tail(t)||_1`` (Definitions 5/6), the exact
set of (residual) heavy hitters, and exact prefix L1.  These run in
memory over the whole stream and are only used by tests/benchmarks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Set, Tuple

from ..common.errors import ConfigurationError
from ..stream.item import Item

__all__ = [
    "identifier_totals",
    "residual_tail_weight",
    "exact_heavy_hitters",
    "exact_residual_heavy_hitters",
    "prefix_l1",
]


def identifier_totals(items: Sequence[Item]) -> Dict[int, float]:
    """Total weight per identifier over the stream prefix given."""
    totals: Dict[int, float] = defaultdict(float)
    for item in items:
        totals[item.ident] += item.weight
    return dict(totals)


def residual_tail_weight(items: Sequence[Item], top: int) -> float:
    """``||x_tail(top)||_1``: total weight after zeroing the ``top``
    largest *per-occurrence* coordinates.

    The paper's vector ``x^t`` has one coordinate per stream update
    (identifiers occurring twice occupy two coordinates), so the tail is
    computed over update weights, not identifier totals.
    """
    if top < 0:
        raise ConfigurationError(f"top must be >= 0, got {top}")
    weights = sorted((item.weight for item in items), reverse=True)
    return float(sum(weights[top:]))


def exact_heavy_hitters(items: Sequence[Item], eps: float) -> Set[int]:
    """Coordinates (update indices) with ``w_i >= eps * ||x||_1``.

    Returns the *update indices* (positions in the stream), matching
    Definition 5's per-coordinate phrasing.
    """
    if not 0 < eps < 1:
        raise ConfigurationError(f"eps must be in (0,1), got {eps}")
    total = sum(item.weight for item in items)
    thresh = eps * total
    return {i for i, item in enumerate(items) if item.weight >= thresh}


def exact_residual_heavy_hitters(
    items: Sequence[Item], eps: float
) -> Tuple[Set[int], float]:
    """Coordinates with ``w_i >= eps * ||x_tail(1/eps)||_1``.

    Returns ``(indices, residual_weight)`` where indices are positions
    in the stream (Definition 6).
    """
    if not 0 < eps < 1:
        raise ConfigurationError(f"eps must be in (0,1), got {eps}")
    top = int(1.0 / eps)
    residual = residual_tail_weight(items, top)
    thresh = eps * residual
    hitters = {i for i, item in enumerate(items) if item.weight >= thresh}
    return hitters, residual


def prefix_l1(items: Sequence[Item]) -> List[float]:
    """Exact ``W_t`` for every prefix ``t = 1..n``."""
    acc = 0.0
    out = []
    for item in items:
        acc += item.weight
        out.append(acc)
    return out

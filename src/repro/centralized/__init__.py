"""Centralized samplers and summaries: baselines and correctness oracles."""

from .efraimidis_spirakis import SkipWeightedReservoirSWOR, WeightedReservoirSWOR
from .exact import (
    exact_heavy_hitters,
    exact_residual_heavy_hitters,
    identifier_totals,
    prefix_l1,
    residual_tail_weight,
)
from .misra_gries import MisraGries, SpaceSaving
from .priority_sampling import PrioritySampler
from .reservoir import UnweightedReservoir, WeightedReservoirSWR

__all__ = [
    "WeightedReservoirSWOR",
    "SkipWeightedReservoirSWOR",
    "UnweightedReservoir",
    "WeightedReservoirSWR",
    "PrioritySampler",
    "MisraGries",
    "SpaceSaving",
    "identifier_totals",
    "residual_tail_weight",
    "exact_heavy_hitters",
    "exact_residual_heavy_hitters",
    "prefix_l1",
]

"""Deterministic heavy-hitter summaries: Misra–Gries and Space-Saving.

These are the standard *non-residual* heavy-hitter baselines the paper's
Theorem 4 improves upon.  Both provide the classic l1 guarantee — every
item with total weight ``>= eps * W`` is reported — but neither can
certify *residual* heavy hitters (Definition 6): after a few giants
absorb the weight budget, mid-tier items within the residual's
epsilon-fraction are indistinguishable from noise.  Experiment E7 shows
this gap empirically.

Both summaries here are the weighted generalizations (increments of
arbitrary positive size).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..common.errors import ConfigurationError, InvalidWeightError
from ..stream.item import Item

__all__ = ["MisraGries", "SpaceSaving"]


class MisraGries:
    """Weighted Misra–Gries with ``capacity`` counters.

    Guarantee: every identifier's true total weight is undercounted by
    at most ``W / (capacity + 1)``; hence any identifier with weight
    ``>= eps*W`` survives when ``capacity >= 1/eps``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._counters: Dict[int, float] = {}
        self.weight_seen = 0.0

    def insert(self, item: Item) -> None:
        """Process one weighted update, decrementing all counters when
        the table overflows (the weighted MG step)."""
        w = item.weight
        if not math.isfinite(w) or w <= 0.0:
            raise InvalidWeightError(f"invalid weight {w} for item {item.ident}")
        self.weight_seen += w
        counters = self._counters
        if item.ident in counters:
            counters[item.ident] += w
            return
        if len(counters) < self.capacity:
            counters[item.ident] = w
            return
        # Decrement every counter by the smallest amount that frees a
        # slot or absorbs the new weight, whichever is smaller.
        min_count = min(counters.values())
        dec = min(min_count, w)
        remaining = w - dec
        dead = []
        for ident in counters:
            counters[ident] -= dec
            if counters[ident] <= 1e-12:
                dead.append(ident)
        for ident in dead:
            del counters[ident]
        if remaining > 0 and len(counters) < self.capacity:
            counters[item.ident] = remaining

    def estimate(self, ident: int) -> float:
        """Lower-bound estimate of the identifier's total weight."""
        return self._counters.get(ident, 0.0)

    def heavy_hitters(self, eps: float) -> List[Tuple[int, float]]:
        """Identifiers whose *estimate* passes ``eps * W`` (superset of
        the true eps-heavy identifiers when capacity >= 1/eps)."""
        thresh = eps * self.weight_seen - self.weight_seen / (self.capacity + 1)
        return sorted(
            ((i, c) for i, c in self._counters.items() if c >= max(thresh, 0.0)),
            key=lambda pair: -pair[1],
        )

    def __len__(self) -> int:
        return len(self._counters)


class SpaceSaving:
    """Weighted Space-Saving with ``capacity`` counters.

    Overestimates: each tracked identifier's counter is within
    ``W / capacity`` *above* its true weight; the minimum counter bounds
    the error of all evicted identifiers.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._counters: Dict[int, float] = {}
        self.weight_seen = 0.0

    def insert(self, item: Item) -> None:
        """Process one weighted update with min-counter replacement."""
        w = item.weight
        if not math.isfinite(w) or w <= 0.0:
            raise InvalidWeightError(f"invalid weight {w} for item {item.ident}")
        self.weight_seen += w
        counters = self._counters
        if item.ident in counters:
            counters[item.ident] += w
            return
        if len(counters) < self.capacity:
            counters[item.ident] = w
            return
        victim = min(counters, key=counters.get)  # type: ignore[arg-type]
        inherited = counters.pop(victim)
        counters[item.ident] = inherited + w

    def estimate(self, ident: int) -> float:
        """Upper-bound estimate of the identifier's total weight."""
        return self._counters.get(ident, 0.0)

    def heavy_hitters(self, eps: float) -> List[Tuple[int, float]]:
        """Identifiers whose counter passes ``eps * W``."""
        thresh = eps * self.weight_seen
        return sorted(
            ((i, c) for i, c in self._counters.items() if c >= thresh),
            key=lambda pair: -pair[1],
        )

    def __len__(self) -> int:
        return len(self._counters)

"""Random-number utilities used throughout the reproduction.

The paper's algorithms are driven by three random primitives:

* i.i.d. rate-1 exponential variables ``t`` used to form precision-
  sampling keys ``v = w / t`` (Section 3, Proposition 1);
* uniform keys used by the unweighted baselines of [11, 14];
* Binomial draws used by the duplication shortcuts (Corollary 1 and the
  L1 tracker of Section 5), which replace literal ``w``-fold duplication
  with a single aggregate coin.

Proposition 7 of the paper argues each exponential needs only ``O(1)``
*expected* bits to resolve a threshold comparison. :class:`LazyExponential`
implements exactly that bit-by-bit generation so the resource benchmarks
(experiment E12) can measure bits consumed per comparison.

Everything is built on :class:`random.Random` (deterministic, seedable,
and fast enough for the site hot path) with explicit sub-stream derivation
so distributed actors draw from independent, reproducible streams.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Optional, Sequence

try:  # optional: vectorized batch draws for the batched engine
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from .errors import ConfigurationError

__all__ = [
    "HAVE_NUMPY",
    "MIN_EXPONENTIAL",
    "MIN_UNIFORM",
    "RandomSource",
    "BatchRandom",
    "LazyExponential",
    "exponential",
    "batch_exponentials",
    "batch_uniforms",
    "min_uniform_key_for_weight",
    "binomial",
    "truncated_exponential_below",
]

#: Whether numpy-backed batch primitives are available in this install.
HAVE_NUMPY = _np is not None


class RandomSource:
    """A seedable root of independent random sub-streams.

    Each distributed actor (site, coordinator) and each independent
    sampler copy gets its own :class:`random.Random` derived from a root
    seed and a string label, so simulations are reproducible regardless
    of the interleaving chosen by the driver.

    Parameters
    ----------
    seed:
        Root seed. ``None`` derives a nondeterministic seed.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = random.Random(seed).getrandbits(64) if seed is None else int(seed)

    @property
    def seed(self) -> int:
        """The root seed this source derives all sub-streams from."""
        return self._seed

    def substream(self, label: str) -> random.Random:
        """Return an independent, reproducible :class:`random.Random`.

        The sub-stream is keyed by ``(root seed, label)``; the same pair
        always yields an identically-seeded generator.
        """
        h = random.Random(f"{self._seed}/{label}").getrandbits(64)
        return random.Random(h)

    def spawn(self, label: str) -> "RandomSource":
        """Derive a child :class:`RandomSource` (for nested protocols)."""
        return RandomSource(random.Random(f"{self._seed}//{label}").getrandbits(64))


#: Zero-guard floor shared by the batch generators: exponential draws
#: are clamped to at least this value so precision-sampling keys
#: ``w/t`` stay finite for any representable weight (``1e300 / 1e-300``
#: is still finite).  The scalar :func:`exponential` achieves the same
#: invariant differently — it *redraws* on ``U <= 0``, which keeps the
#: reference engine's historical draw sequence intact — but both
#: policies guarantee strictly positive, finite ``t`` and hence finite
#: keys; the regression tests in ``tests/test_common_rng.py`` pin both.
MIN_EXPONENTIAL = 1e-300

#: Same guard for uniform keys: the smallest positive double, so keys
#: stay strictly inside ``(0, 1)``.
MIN_UNIFORM = 5e-324


def exponential(rng: random.Random, rate: float = 1.0) -> float:
    """Draw an exponential variable with the given rate.

    Uses inversion (``-ln(U)/rate``) to match the bit-by-bit scheme of
    :class:`LazyExponential`.  The zero guard *redraws* on ``U <= 0``
    (rather than clamping like :meth:`BatchRandom.exponentials`) so the
    scalar draw sequence matches the pre-batching reference runs bit
    for bit; either policy yields strictly positive, finite ``t`` —
    see :data:`MIN_EXPONENTIAL`.
    """
    if rate <= 0.0:
        raise ConfigurationError(f"exponential rate must be positive, got {rate}")
    u = rng.random()
    while u <= 0.0:
        u = rng.random()
    return -math.log(u) / rate


class BatchRandom:
    """Vectorized companion to a :class:`random.Random` sub-stream.

    The scalar protocol paths draw from :class:`random.Random` one
    variate at a time; the batched engine needs thousands per call.  A
    ``BatchRandom`` derives an independent, reproducible numpy generator
    (PCG64 keyed by 64 bits drawn from the parent stream) so the batch
    fast path keeps the determinism contract — same root seed, same
    run — without perturbing the parent stream beyond the one
    derivation draw.

    Falls back to scalar loops (returning lists) when numpy is absent,
    so callers can gate vectorized *filtering* on
    :data:`HAVE_NUMPY` but never need to gate *generation*.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._gen = (
            _np.random.Generator(_np.random.PCG64(rng.getrandbits(64)))
            if _np is not None
            else None
        )

    def exponentials(self, n: int):
        """``n`` i.i.d. rate-1 exponentials (ndarray, or list sans numpy).

        The zero guard *clamps* draws to :data:`MIN_EXPONENTIAL` (numpy
        ziggurat draws can round to exactly 0.0), where the scalar
        :func:`exponential` redraws instead — a deliberate asymmetry:
        clamping is branch-free and vectorizable, redrawing preserves
        the reference engine's historical sequence.  Both guarantee
        strictly positive, finite draws, hence finite ``w/t`` keys.
        """
        if n < 0:
            raise ConfigurationError(f"batch size must be >= 0, got {n}")
        if self._gen is None:
            return [exponential(self._rng) for _ in range(n)]
        draws = self._gen.standard_exponential(n)
        return _np.maximum(draws, MIN_EXPONENTIAL, out=draws)

    def uniforms(self, n: int):
        """``n`` i.i.d. uniforms in ``(0, 1)`` (ndarray, or list).

        Clamped to at least :data:`MIN_UNIFORM` (the numpy-free path
        redraws, mirroring :func:`exponential`'s policy).
        """
        if n < 0:
            raise ConfigurationError(f"batch size must be >= 0, got {n}")
        if self._gen is None:
            out: List[float] = []
            while len(out) < n:
                u = self._rng.random()
                if u > 0.0:
                    out.append(u)
            return out
        draws = self._gen.random(n)
        return _np.maximum(draws, MIN_UNIFORM)

    def snapshot(self):
        """Opaque generator state for deterministic replay.

        Paired with :meth:`restore`; used by the sharded engine's
        rollback path to rewind a site to a window boundary without
        pickling.  ``None`` when numpy is absent (the scalar fallback
        draws from the parent stream, whose state the caller snapshots
        separately).
        """
        return None if self._gen is None else self._gen.bit_generator.state

    def restore(self, state) -> None:
        """Rewind to a :meth:`snapshot` taken on this instance."""
        if state is not None:
            self._gen.bit_generator.state = state

    def binomials(self, n: int, ps):
        """One ``Binomial(n, p)`` draw per entry of ``ps`` (int64
        ndarray, or list sans numpy).

        The bulk counterpart of :func:`binomial` for the duplication
        shortcuts (SWR's aggregate coins, the L1 tracker's per-update
        copy counts): exact binomial sampling via numpy's generator,
        falling back to per-entry scalar :func:`binomial` draws from
        the parent stream when numpy is absent.
        """
        if n < 0:
            raise ConfigurationError(f"binomial n must be >= 0, got {n}")
        if self._gen is None:
            return [binomial(self._rng, n, p) for p in ps]
        return self._gen.binomial(n, _np.clip(ps, 0.0, 1.0))


def batch_exponentials(rng: random.Random, n: int, rate: float = 1.0):
    """Draw ``n`` exponentials with the given rate in one call.

    Functional convenience over :class:`BatchRandom` for one-shot use;
    repeated callers should hold a ``BatchRandom`` to amortize the
    generator derivation.
    """
    if rate <= 0.0:
        raise ConfigurationError(f"exponential rate must be positive, got {rate}")
    draws = BatchRandom(rng).exponentials(n)
    if rate == 1.0:
        return draws
    if _np is not None:
        return draws / rate
    return [t / rate for t in draws]


def batch_uniforms(rng: random.Random, n: int):
    """Draw ``n`` uniforms in ``(0, 1)`` in one call."""
    return BatchRandom(rng).uniforms(n)


def truncated_exponential_below(rng: random.Random, bound: float) -> float:
    """Draw ``t ~ Exp(1)`` conditioned on ``t < bound``.

    Used by the duplication shortcuts: once a Binomial draw decides that
    a duplicate's key crossed the send threshold (``t < w/τ``), the
    actual key must be generated from the *conditional* distribution.
    Inversion of the truncated CDF: ``t = -ln(1 - U·(1 - e^{-bound}))``.
    """
    if bound <= 0.0:
        raise ConfigurationError(f"truncation bound must be positive, got {bound}")
    u = rng.random()
    # 1 - exp(-bound) is the total mass below the bound.
    mass = -math.expm1(-bound)
    t = -math.log1p(-u * mass)
    # Guard against floating round-up onto the bound itself.
    return min(t, bound * (1.0 - 1e-12))


def min_uniform_key_for_weight(rng: random.Random, weight: float) -> float:
    """Minimum of ``weight`` i.i.d. uniform(0,1) keys, in one draw.

    For the SWR reduction (Corollary 1) an item of integer weight ``w``
    stands for ``w`` unit copies, each with its own uniform key; only
    the minimum matters to a min-key sampler.  ``min`` of ``w`` uniforms
    has CDF ``1-(1-x)^w``, inverted here as ``1-(1-U)^{1/w}``.  The
    formula extends continuously to fractional weights.
    """
    if weight <= 0.0:
        raise ConfigurationError(f"weight must be positive, got {weight}")
    u = rng.random()
    x = -math.expm1(math.log1p(-u) / weight)
    # Float-edge guard: for weight < 1 the exponent 1/weight amplifies
    # log1p(-u), and -expm1 of a large-magnitude argument rounds to
    # exactly 1.0 — keys must stay strictly inside the unit interval.
    return min(x, 1.0 - 2.0**-53)


def binomial(rng: random.Random, n: int, p: float) -> int:
    """Draw ``Binomial(n, p)`` without numpy (hot-path friendly).

    Uses direct Bernoulli summation for small ``n`` and a normal
    approximation with continuity correction, clamped and resampled
    through inversion when near the tails, for large ``n``.  The
    distributional fidelity the protocols need is "how many of ``n``
    independent coins landed heads", and for the large-``n`` regime the
    callers only consume the value through concentration arguments, so
    the standard BTPE-grade approximation is sufficient; tests check
    mean/variance against theory.
    """
    if n < 0:
        raise ConfigurationError(f"binomial n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"binomial p must be in [0,1], got {p}")
    if n == 0 or p == 0.0:
        return 0
    if p == 1.0:
        return n
    if n <= 64:
        return sum(1 for _ in range(n) if rng.random() < p)
    # Inversion via waiting-time geometric jumps: expected work O(n*p),
    # exact distribution. Fall back to normal approx only when n*p huge.
    mean = n * p
    if mean <= 4096:
        # Geometric-jump inversion (exact): count successes by skipping
        # failures in blocks of Geometric(p).
        count = 0
        i = 0
        log_q = math.log1p(-p)
        if log_q == 0.0:  # p underflowed: successes are impossible
            return 0
        while True:
            u = rng.random()
            while u <= 0.0:
                u = rng.random()
            jump = math.log(u) / log_q
            if jump > n:  # guard the float->int conversion
                return count
            i += int(math.floor(jump)) + 1
            if i > n:
                return count
            count += 1
    # Very large n*p: normal approximation with clamping (used only by
    # stress benchmarks; error is negligible at this scale).
    sd = math.sqrt(n * p * (1.0 - p))
    val = int(round(rng.gauss(mean, sd)))
    return max(0, min(n, val))


class LazyExponential:
    """A rate-1 exponential generated bit-by-bit (Proposition 7).

    The exponential is ``t = -ln(U)`` for a uniform ``U`` whose binary
    expansion is revealed lazily.  After ``b`` bits, ``U`` is pinned to
    an interval ``[lo, lo + 2^-b)``; a comparison ``t < bound`` (i.e.
    ``U > e^{-bound}``) resolves as soon as the interval falls entirely
    on one side of ``e^{-bound}``.  Each extra bit halves the undecided
    mass, so comparisons take ``O(1)`` expected bits — the paper's
    argument for O(1) expected message size and generation time.

    Attributes
    ----------
    bits_used:
        Number of uniform bits revealed so far (the resource metric of
        experiment E12).
    """

    #: Bits at which :meth:`value` stops refining (one double's mantissa).
    MAX_BITS = 64

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._lo = 0.0  # lower end of the interval containing U
        self._width = 1.0
        self.bits_used = 0

    def _refine(self) -> None:
        bit = self._rng.getrandbits(1)
        self.bits_used += 1
        self._width *= 0.5
        if bit:
            self._lo += self._width

    def below(self, bound: float) -> bool:
        """Decide whether ``t < bound``, revealing as few bits as needed.

        ``t < bound``  iff  ``U > e^{-bound}``.
        """
        if bound <= 0.0:
            return False
        target = math.exp(-bound)
        while True:
            if self._lo >= target:
                return True
            if self._lo + self._width <= target:
                return False
            if self.bits_used >= self.MAX_BITS:
                # Interval straddles the target at full precision; the
                # remaining mass is < 2^-64 — resolve by midpoint.
                return (self._lo + 0.5 * self._width) > target
            self._refine()

    def value(self) -> float:
        """Materialize ``t`` to double precision (refines to 64 bits)."""
        while self.bits_used < self.MAX_BITS and self._width > 1e-18:
            self._refine()
        u = self._lo + 0.5 * self._width
        if u <= 0.0:
            u = self._width * 0.5
        t = -math.log(u)
        if t <= 0.0:
            # u rounded up to 1.0 at double precision (all revealed
            # bits were 1): -log collapses to -0.0, which is not a
            # valid exponential.  -log(u) ~ 1-u near 1, so return the
            # pinned interval's midpoint distance from 1 instead.
            t = 0.5 * self._width
        return t


def key_stream(rng: random.Random, weights: Sequence[float]) -> Iterator[float]:
    """Yield precision-sampling keys ``w_i / t_i`` for a weight sequence."""
    for w in weights:
        yield w / exponential(rng)

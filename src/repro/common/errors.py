"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch every library failure with a single ``except`` clause while
still distinguishing configuration problems from protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An algorithm or simulator was constructed with invalid parameters.

    Raised eagerly at construction time (fail fast) rather than deep in a
    stream-processing loop, e.g. a non-positive sample size, zero sites,
    or an epsilon outside ``(0, 1)``.
    """


class InvalidWeightError(ReproError):
    """A stream item carried a weight the model does not allow.

    The paper (Section 2.1) assumes every weight satisfies ``w >= 1``
    after normalization; weights must also be finite. The samplers
    enforce ``w > 0`` and finiteness, and the strict ``w >= 1`` model
    assumption is enforced by the protocol layer.
    """


class ProtocolViolationError(ReproError):
    """The distributed protocol reached a state its invariants forbid.

    This signals a bug in the implementation (or deliberate fault
    injection in tests), not a user error: e.g. a regular message
    arriving for a level set that was never saturated, or a FIFO channel
    delivering out of order.
    """


class DrainedStreamError(ReproError):
    """A stream generator was asked for items after it was exhausted."""

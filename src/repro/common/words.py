"""Machine-word accounting (the paper's space/message unit).

Section 2.1 of the paper measures space and message size in machine
words of ``Theta(log(nW))`` bits, assuming an identifier and a weight
each fit in O(1) words.  The simulator reports message *counts* (the
primary metric) but also validates that each concrete message payload is
O(1) words so counts and communicated words agree up to a constant —
Proposition 7's claim.
"""

from __future__ import annotations

import math
from typing import Tuple

try:  # optional: vectorized accounting for message packs
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

__all__ = [
    "word_size_bits",
    "words_for_value",
    "words_for_payload",
    "words_for_values_array",
]


def word_size_bits(n: int, total_weight: float) -> int:
    """Bits per machine word for a stream of ``n`` items, weight ``W``."""
    magnitude = max(2.0, float(n) * max(2.0, total_weight))
    return max(32, int(math.ceil(math.log2(magnitude))))


def words_for_value(value: float, word_bits: int = 64) -> int:
    """Words needed to encode one identifier/weight/key value."""
    if value == 0:
        return 1
    bits = max(1, int(math.ceil(math.log2(abs(value) + 1))) + 1)
    return max(1, int(math.ceil(bits / word_bits)))


#: Magnitude below which :func:`words_for_value` provably returns 1:
#: for ``0 < |v| <= 2**62``, ``log2(|v|+1) <= 62 + 2**-61``, so even a
#: 1-ulp libm error leaves ``ceil(.) <= 63`` and the bit count
#: ``ceil(.)+1 <= 64`` — exactly one 64-bit word (and ``v == 0`` is one
#: word by definition).
_ONE_WORD_MAGNITUDE = 2.0**62


def words_for_values_array(values):
    """Vectorized :func:`words_for_value` over a numpy array.

    **Provably element-wise equal** to the scalar function: values with
    ``|v| <= 2**62`` cost one word by the case analysis on
    :data:`_ONE_WORD_MAGNITUDE`; the (rare) larger values — giant
    weights, precision-sampling keys with tiny exponentials — are
    routed through the scalar function itself, so no independently
    rounded ``log2`` can ever disagree with it.  This is what lets a
    :class:`~repro.net.messages.MessagePack`'s word accounting match
    the sum over the individual messages it replaces, bit for bit.
    """
    if _np is None:  # pragma: no cover - guarded by callers
        raise ImportError("words_for_values_array requires numpy")
    v = _np.asarray(values, dtype=_np.float64)
    out = _np.ones(len(v), dtype=_np.int64)
    big = _np.flatnonzero(_np.abs(v) > _ONE_WORD_MAGNITUDE)
    for i in big.tolist():
        out[i] = words_for_value(float(v[i]))
    return out


def words_for_payload(payload: Tuple, word_bits: int = 64) -> int:
    """Total words to encode a tuple payload, one field at a time.

    Strings (message kind tags) cost one word — they stand for a small
    enum on the wire, not the actual text.
    """
    total = 0
    for field in payload:
        if isinstance(field, (int, float)):
            total += words_for_value(float(field), word_bits)
        else:
            total += 1
    return max(1, total)

"""Machine-word accounting (the paper's space/message unit).

Section 2.1 of the paper measures space and message size in machine
words of ``Theta(log(nW))`` bits, assuming an identifier and a weight
each fit in O(1) words.  The simulator reports message *counts* (the
primary metric) but also validates that each concrete message payload is
O(1) words so counts and communicated words agree up to a constant —
Proposition 7's claim.
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = ["word_size_bits", "words_for_value", "words_for_payload"]


def word_size_bits(n: int, total_weight: float) -> int:
    """Bits per machine word for a stream of ``n`` items, weight ``W``."""
    magnitude = max(2.0, float(n) * max(2.0, total_weight))
    return max(32, int(math.ceil(math.log2(magnitude))))


def words_for_value(value: float, word_bits: int = 64) -> int:
    """Words needed to encode one identifier/weight/key value."""
    if value == 0:
        return 1
    bits = max(1, int(math.ceil(math.log2(abs(value) + 1))) + 1)
    return max(1, int(math.ceil(bits / word_bits)))


def words_for_payload(payload: Tuple, word_bits: int = 64) -> int:
    """Total words to encode a tuple payload, one field at a time.

    Strings (message kind tags) cost one word — they stand for a small
    enum on the wire, not the actual text.
    """
    total = 0
    for field in payload:
        if isinstance(field, (int, float)):
            total += words_for_value(float(field), word_bits)
        else:
            total += 1
    return max(1, total)

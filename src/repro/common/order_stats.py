"""Order statistics of exponential-scaled keys (Proposition 1 / Nagaraja).

Precision sampling assigns each item ``(e_i, w_i)`` the key
``v_i = w_i / t_i`` with ``t_i ~ Exp(1)``.  Proposition 1 of the paper
(citing Nagaraja 2006, eq. 11.7) states two facts this module makes
executable:

1. the items achieving the top-``s`` keys are a weighted sample without
   replacement (SWOR) — :func:`exact_swor_inclusion_probabilities`
   computes the ground-truth inclusion probabilities this implies, so
   tests can compare empirical frequencies against an oracle;
2. the ``k``-th largest key has the distributional representation
   ``v_D(k) = ( sum_{j<=k} E_j / (W - sum_{q<j} w_D(q)) )^{-1}`` with
   fresh i.i.d. exponentials ``E_j`` — :func:`sample_kth_key_nagaraja`
   draws from that representation so tests can check both routes agree.
"""

from __future__ import annotations

import math
import random
from functools import lru_cache
from typing import List, Sequence, Tuple

from .errors import ConfigurationError
from .rng import exponential

__all__ = [
    "anti_ranks",
    "exact_swor_inclusion_probabilities",
    "exact_swor_ordered_probability",
    "sample_kth_key_nagaraja",
    "sample_top_keys_direct",
]


def anti_ranks(keys: Sequence[float]) -> List[int]:
    """Indices ``D(1), D(2), ...`` sorting keys in decreasing order.

    ``anti_ranks(v)[0]`` is the index of the largest key, matching the
    paper's ``D(1)``. Ties (measure-zero for continuous keys) break by
    index for determinism.
    """
    return sorted(range(len(keys)), key=lambda i: (-keys[i], i))


def exact_swor_inclusion_probabilities(
    weights: Sequence[float], s: int
) -> List[float]:
    """Exact per-item inclusion probabilities of a weighted SWOR of size s.

    Definition 1 of the paper: draw ``s`` times, each draw proportional
    to weight among the not-yet-drawn items.  Computed by exhaustive
    recursion over subsets, so intended for test universes
    (``n <= ~14``); complexity ``O(2^n * n)``.
    """
    n = len(weights)
    if s < 0:
        raise ConfigurationError(f"sample size must be >= 0, got {s}")
    s = min(s, n)
    if any(w <= 0 for w in weights):
        raise ConfigurationError("all weights must be positive")
    total = float(sum(weights))
    w = tuple(float(x) for x in weights)

    @lru_cache(maxsize=None)
    def inclusion(mask: int, remaining_draws: int) -> Tuple[float, ...]:
        """P(each item is drawn within the next ``remaining_draws``),
        given ``mask`` marks items already removed."""
        if remaining_draws == 0:
            return tuple(0.0 for _ in range(n))
        rem_total = total - sum(w[i] for i in range(n) if mask & (1 << i))
        probs = [0.0] * n
        for i in range(n):
            if mask & (1 << i):
                continue
            p_i = w[i] / rem_total
            probs[i] += p_i
            sub = inclusion(mask | (1 << i), remaining_draws - 1)
            for j in range(n):
                probs[j] += p_i * sub[j]
        return tuple(probs)

    result = list(inclusion(0, s))
    inclusion.cache_clear()
    return result


def exact_swor_ordered_probability(
    weights: Sequence[float], order: Sequence[int]
) -> float:
    """Probability that a weighted SWOR draws exactly ``order``, in order.

    This is the successive-sampling product
    ``prod_j w_{order[j]} / (W - w_{order[0]} - ... - w_{order[j-1]})``;
    used by tests to validate full ordered outcomes on tiny universes.
    """
    total = float(sum(weights))
    prob = 1.0
    for idx in order:
        if weights[idx] <= 0:
            raise ConfigurationError("all weights must be positive")
        prob *= weights[idx] / total
        total -= weights[idx]
    return prob


def sample_kth_key_nagaraja(
    weights: Sequence[float],
    anti_rank_prefix: Sequence[int],
    rng: random.Random,
) -> float:
    """Draw ``v_D(k)`` from the Nagaraja representation of Proposition 1.

    Parameters
    ----------
    weights:
        All item weights.
    anti_rank_prefix:
        The realized anti-rank indices ``D(1), ..., D(k)`` to condition
        on (the representation's exponentials are independent of them).
    rng:
        Randomness source for the fresh exponentials ``E_j``.
    """
    total = float(sum(weights))
    if not anti_rank_prefix:
        raise ConfigurationError("anti_rank_prefix must name at least D(1)")
    acc = 0.0
    removed = 0.0
    for d in anti_rank_prefix:
        denom = total - removed
        if denom <= 0:
            raise ConfigurationError("anti-rank prefix removes all weight")
        acc += exponential(rng) / denom
        removed += float(weights[d])
    return 1.0 / acc


def sample_top_keys_direct(
    weights: Sequence[float], s: int, rng: random.Random
) -> Tuple[List[int], List[float]]:
    """Draw all keys ``w_i/t_i`` directly and return top-``s`` (ids, keys).

    The direct route Proposition 1 equates with the Nagaraja
    representation; used by tests and by the centralized oracle sampler.
    """
    keys = [w / exponential(rng) for w in weights]
    order = anti_ranks(keys)[: min(s, len(keys))]
    return order, [keys[i] for i in order]


def harmonic_partial(n: int) -> float:
    """``H_n = sum_{i<=n} 1/i`` with the asymptotic form for large n."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if n < 64:
        return sum(1.0 / i for i in range(1, n + 1))
    gamma = 0.5772156649015329
    return math.log(n) + gamma + 1.0 / (2 * n) - 1.0 / (12 * n * n)

"""Statistical validation helpers for sampler correctness tests.

Distributed samplers are validated empirically: run the protocol many
times with independent seeds, tally which items land in the sample, and
compare the empirical distribution against the exact law computed by
:mod:`repro.common.order_stats`.  This module supplies the comparison
machinery — chi-square goodness of fit, total-variation distance,
Kolmogorov–Smirnov for continuous quantities (key values, L1 estimates)
— with scipy used for p-values.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Hashable, Iterable, Mapping, Sequence, Tuple

from .errors import ConfigurationError

__all__ = [
    "chi_square_statistic",
    "chi_square_pvalue",
    "total_variation",
    "ks_statistic",
    "empirical_inclusion_frequencies",
    "relative_error",
    "within_relative_error",
]


def chi_square_statistic(
    observed: Mapping[Hashable, int], expected: Mapping[Hashable, float]
) -> Tuple[float, int]:
    """Pearson chi-square statistic and degrees of freedom.

    ``expected`` maps categories to expected *counts* (not
    probabilities); categories with expected count 0 must have observed
    count 0 or the statistic is infinite by convention.
    """
    stat = 0.0
    df = -1
    for cat, exp in expected.items():
        obs = observed.get(cat, 0)
        if exp <= 0.0:
            if obs:
                return math.inf, max(df, 1)
            continue
        stat += (obs - exp) ** 2 / exp
        df += 1
    return stat, max(df, 1)


def chi_square_pvalue(stat: float, df: int) -> float:
    """Upper-tail p-value of the chi-square distribution."""
    if math.isinf(stat):
        return 0.0
    from scipy.stats import chi2

    return float(chi2.sf(stat, df))


def total_variation(
    p: Mapping[Hashable, float], q: Mapping[Hashable, float]
) -> float:
    """Total-variation distance between two distributions over categories."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def ks_statistic(sample: Sequence[float], cdf) -> float:
    """One-sample Kolmogorov–Smirnov statistic against a CDF callable."""
    if not sample:
        raise ConfigurationError("KS statistic needs a non-empty sample")
    xs = sorted(sample)
    n = len(xs)
    worst = 0.0
    for i, x in enumerate(xs):
        c = cdf(x)
        worst = max(worst, abs((i + 1) / n - c), abs(i / n - c))
    return worst


def empirical_inclusion_frequencies(
    samples: Iterable[Iterable[Hashable]],
) -> Dict[Hashable, float]:
    """Fraction of trials in which each item id appeared in the sample."""
    counts: Counter = Counter()
    trials = 0
    for sample in samples:
        trials += 1
        # dict.fromkeys dedupes in first-appearance order, so the
        # returned frequency table's order is input- not hash-dependent.
        for item in dict.fromkeys(sample):
            counts[item] += 1
    if trials == 0:
        raise ConfigurationError("no trials supplied")
    return {item: c / trials for item, c in counts.items()}


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth`` (truth must be nonzero)."""
    if truth == 0:
        raise ConfigurationError("relative error undefined for truth == 0")
    return abs(estimate - truth) / abs(truth)


def within_relative_error(estimate: float, truth: float, eps: float) -> bool:
    """Whether ``estimate`` is a ``(1 ± eps)`` approximation of ``truth``."""
    return relative_error(estimate, truth) <= eps


def mean_and_variance(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and (unbiased) variance; variance 0 for n < 2."""
    n = len(values)
    if n == 0:
        raise ConfigurationError("no values supplied")
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, var

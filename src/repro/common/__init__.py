"""Shared utilities: randomness, order statistics, validation, accounting."""

from .errors import (
    ConfigurationError,
    DrainedStreamError,
    InvalidWeightError,
    ProtocolViolationError,
    ReproError,
)
from .rng import (
    HAVE_NUMPY,
    BatchRandom,
    LazyExponential,
    RandomSource,
    batch_exponentials,
    batch_uniforms,
    binomial,
    exponential,
    min_uniform_key_for_weight,
    truncated_exponential_below,
)
from .order_stats import (
    anti_ranks,
    exact_swor_inclusion_probabilities,
    exact_swor_ordered_probability,
    sample_kth_key_nagaraja,
    sample_top_keys_direct,
)
from .stats import (
    chi_square_pvalue,
    chi_square_statistic,
    empirical_inclusion_frequencies,
    ks_statistic,
    relative_error,
    total_variation,
    within_relative_error,
)
from .words import word_size_bits, words_for_payload, words_for_value

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InvalidWeightError",
    "ProtocolViolationError",
    "DrainedStreamError",
    "RandomSource",
    "HAVE_NUMPY",
    "BatchRandom",
    "LazyExponential",
    "exponential",
    "batch_exponentials",
    "batch_uniforms",
    "truncated_exponential_below",
    "min_uniform_key_for_weight",
    "binomial",
    "anti_ranks",
    "exact_swor_inclusion_probabilities",
    "exact_swor_ordered_probability",
    "sample_kth_key_nagaraja",
    "sample_top_keys_direct",
    "chi_square_statistic",
    "chi_square_pvalue",
    "total_variation",
    "ks_statistic",
    "empirical_inclusion_frequencies",
    "relative_error",
    "within_relative_error",
    "word_size_bits",
    "words_for_value",
    "words_for_payload",
]

"""Extensions beyond the paper's core results.

Section 6 of the paper lists open problems; this package implements the
centralized building blocks for two of them, plus the cascade-sampling
oracle from the related work:

* :class:`SlidingWindowWeightedSWOR` — exact weighted SWOR over any
  recent window (the sliding-window extension, centralized case);
* :class:`CascadeWeightedSWOR` — the Braverman–Ostrovsky–Vorsanger [7]
  construction, used as an independent cross-validation oracle.
"""

from .cascade import CascadeWeightedSWOR
from .sliding_window import SlidingWindowWeightedSWOR

__all__ = ["SlidingWindowWeightedSWOR", "CascadeWeightedSWOR"]

"""Cascade sampling — Braverman, Ostrovsky & Vorsanger's weighted SWOR.

The paper's related work (Section 1.3) cites [7] as the other
centralized weighted-SWOR construction: a chain of ``s`` single-item
weighted samplers where each level samples from the stream *minus* the
items currently held above it, achieved by "cascading" every displaced
or rejected item down to the next level as if it were a fresh arrival.

Included as an independently-derived oracle: its output law must agree
with the exponential-key sampler (`repro.centralized`), which gives the
test suite two structurally different implementations of Definition 1
to cross-validate — a strong guard against correlated bugs.

Level ``i`` keeps one item; on an arrival (original or cascaded) of
weight ``w`` when the level has seen total weight ``W_i`` (including
``w``), the level adopts the arrival with probability ``w / W_i``
(Chao's single-sample rule) and cascades whichever item it no longer
holds.  By induction each level holds a weighted sample of everything
the levels above did not take — exactly the sequential-draw process of
Definition 1.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..common.errors import ConfigurationError, InvalidWeightError
from ..stream.item import Item

__all__ = ["CascadeWeightedSWOR"]


class CascadeWeightedSWOR:
    """Weighted sample without replacement via cascade sampling [7]."""

    def __init__(self, sample_size: int, rng: random.Random) -> None:
        if sample_size <= 0:
            raise ConfigurationError(
                f"sample size must be positive, got {sample_size}"
            )
        self.sample_size = sample_size
        self._rng = rng
        self._holds: List[Optional[Item]] = [None] * sample_size
        self._level_weight: List[float] = [0.0] * sample_size
        self.items_seen = 0

    def insert(self, item: Item) -> None:
        """Process one stream item, cascading displacements downward."""
        w = item.weight
        if w <= 0 or w != w:
            raise InvalidWeightError(f"invalid weight {w} for item {item.ident}")
        self.items_seen += 1
        arrival: Optional[Item] = item
        for level in range(self.sample_size):
            if arrival is None:
                break
            self._level_weight[level] += arrival.weight
            held = self._holds[level]
            if held is None:
                self._holds[level] = arrival
                arrival = None
            elif self._rng.random() < arrival.weight / self._level_weight[level]:
                # Level adopts the arrival; the old item cascades down.
                self._holds[level] = arrival
                arrival = held
            # else: the arrival itself cascades down unchanged.

    def sample(self) -> List[Item]:
        """The current weighted SWOR (level order = draw order)."""
        return [item for item in self._holds if item is not None]

    def __len__(self) -> int:
        return sum(1 for item in self._holds if item is not None)

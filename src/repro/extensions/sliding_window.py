"""Sliding-window weighted SWOR — the paper's named open problem.

Section 6 asks to "extend our algorithm for weighted sampling to the
sliding window model of streaming, where only the most recent data is
taken into account".  This module contributes the centralized building
block: a sampler that, at any moment, can produce an exact weighted
SWOR of the last ``N`` arrivals for *any* ``N`` up to a configured
horizon — in expected ``O(s·log(n/s))`` space rather than buffering the
window.

The construction extends exponential-key precision sampling with the
classic dominance argument (Babcock–Datar–Motwani for the unweighted
case): give every arrival its key ``v = w/t`` and keep an item iff
fewer than ``s`` *later* arrivals have larger keys.  For any window
(a suffix of the arrival order), the top-``s`` keys within the window
are then all retained — because an evicted item had ``s`` later
dominators, which all belong to every window that contains it — so a
query is just "top-``s`` retained keys inside the window", which is an
exact weighted SWOR of the window by Proposition 1.

The distributed version remains open, as in the paper; this sampler is
what each site (or the coordinator, on centralized replay) would run.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..common.errors import ConfigurationError, InvalidWeightError
from ..common.rng import exponential
from ..stream.item import Item

__all__ = ["SlidingWindowWeightedSWOR"]


class _Entry:
    __slots__ = ("index", "item", "key", "dominators")

    def __init__(self, index: int, item: Item, key: float) -> None:
        self.index = index
        self.item = item
        self.key = key
        self.dominators = 0  # later arrivals with a strictly larger key


class SlidingWindowWeightedSWOR:
    """Exact weighted SWOR over any recent window of a weighted stream.

    Parameters
    ----------
    sample_size:
        ``s`` — the sample size served for any queried window.
    rng:
        Randomness source (one exponential per arrival).
    horizon:
        Optional maximum window length; arrivals older than the horizon
        are discarded outright (bounds worst-case space for infinite
        streams).

    Notes
    -----
    Retained set size is ``O(s·log(n/s))`` in expectation for ``n``
    arrivals in the horizon: the ``i``-th most recent arrival survives
    only if its key ranks in the top ``s`` among ``i`` i.i.d.-shaped
    competitors, an event of probability ``~min(1, s/i)``.
    """

    def __init__(
        self,
        sample_size: int,
        rng: random.Random,
        horizon: Optional[int] = None,
    ) -> None:
        if sample_size <= 0:
            raise ConfigurationError(
                f"sample size must be positive, got {sample_size}"
            )
        if horizon is not None and horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        self.sample_size = sample_size
        self.horizon = horizon
        self._rng = rng
        self._entries: List[_Entry] = []  # in arrival order
        self.items_seen = 0

    def insert(self, item: Item) -> None:
        """Observe one arrival; O(retained) time."""
        w = item.weight
        if w <= 0 or w != w:  # noqa: PLR0124 - NaN check
            raise InvalidWeightError(f"invalid weight {w} for item {item.ident}")
        self.items_seen += 1
        key = w / exponential(self._rng)
        s = self.sample_size
        survivors: List[_Entry] = []
        for entry in self._entries:
            if entry.key < key:
                entry.dominators += 1
            if entry.dominators < s:
                survivors.append(entry)
        survivors.append(_Entry(self.items_seen - 1, item, key))
        if self.horizon is not None:
            cutoff = self.items_seen - self.horizon
            survivors = [e for e in survivors if e.index >= cutoff]
        self._entries = survivors

    def retained_count(self) -> int:
        """Number of retained candidates (the space metric)."""
        return len(self._entries)

    def sample(self, window: Optional[int] = None) -> List[Item]:
        """Weighted SWOR of the last ``window`` arrivals (default: the
        whole horizon / stream).  Decreasing key order."""
        return [item for item, _ in self.sample_with_keys(window)]

    def sample_with_keys(
        self, window: Optional[int] = None
    ) -> List[Tuple[Item, float]]:
        """``(item, key)`` pairs for the window's top-``s`` keys."""
        if window is not None:
            if window <= 0:
                raise ConfigurationError(f"window must be positive, got {window}")
            if self.horizon is not None and window > self.horizon:
                raise ConfigurationError(
                    f"window {window} exceeds horizon {self.horizon}"
                )
            cutoff = self.items_seen - window
        else:
            cutoff = self.items_seen - (self.horizon or self.items_seen)
        eligible = [e for e in self._entries if e.index >= cutoff]
        eligible.sort(key=lambda e: -e.key)
        return [(e.item, e.key) for e in eligible[: self.sample_size]]

"""Sliding-window weighted SWOR — the paper's named open problem.

Section 6 asks to "extend our algorithm for weighted sampling to the
sliding window model of streaming, where only the most recent data is
taken into account".  This module contributes the centralized building
block: a sampler that, at any moment, can produce an exact weighted
SWOR of the last ``N`` arrivals for *any* ``N`` up to a configured
horizon — in expected ``O(s·log(n/s))`` space rather than buffering the
window.

The construction extends exponential-key precision sampling with the
classic dominance argument (Babcock–Datar–Motwani for the unweighted
case): give every arrival its key ``v = w/t`` and keep an item iff
fewer than ``s`` *later* arrivals have larger keys.  For any window
(a suffix of the arrival order), the top-``s`` keys within the window
are then all retained — because an evicted item had ``s`` later
dominators, which all belong to every window that contains it — so a
query is just "top-``s`` retained keys inside the window", which is an
exact weighted SWOR of the window by Proposition 1.

Two insertion paths share the construction:

* :meth:`SlidingWindowWeightedSWOR.insert` — one arrival, one
  ``O(retained)`` dominance scan (the historical per-item path);
* :meth:`SlidingWindowWeightedSWOR.insert_columns` — a whole column of
  arrivals at once, **bit-identical to per-item insertion at any chunk
  size** (it consumes the same scalar uniforms in the same order), with
  the dominance bookkeeping done in bulk: retained entries take one
  vectorized rank lookup against the chunk's sorted keys, and the
  chunk's internal dominator counts come from block-wise sorted-key
  prefix ranks instead of ``O(retained)`` scans per arrival.  This is
  the hook the columnar plane (:class:`~repro.stream.columns.ColumnarStream`
  timestamp columns, the multi-query driver's
  ``observe_columns`` path) feeds.

Window-validation contract
--------------------------
``sample(window=N)`` answers for **any** positive ``N`` that the
sampler's retention provably covers: the whole stream when ``horizon``
is ``None``, else any ``N <= horizon``.  ``N`` larger than the horizon
raises :class:`~repro.common.errors.ConfigurationError` (the data is
gone); ``N`` larger than the number of arrivals seen so far is *valid*
in both modes — the window simply covers the whole retained stream, the
same answer an ``N``-long window will give until the ``N+1``-th arrival.
Queries are validated against the *retention guarantee*, never against
the arrival count.

The distributed version remains open, as in the paper; this sampler is
what each site (or the coordinator, on centralized replay) would run.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

try:  # optional: bulk dominance bookkeeping for insert_columns
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError, InvalidWeightError
from ..common.rng import exponential
from ..kernels import active as _active_kernels
from ..stream.item import Item

__all__ = ["SlidingWindowWeightedSWOR"]

#: Arrivals per internal bulk round of :meth:`insert_columns` — bounds
#: the transient sort/rank arrays regardless of the caller's column
#: length.
_INSERT_CHUNK = 8192

# The chunk-internal dominator count lives in the kernel tier
# (``repro.kernels``): block-table prefix ranks on the numpy backend,
# a Fenwick tree on the compiled one — exact counts either way.


class _Entry:
    __slots__ = ("index", "item", "key", "dominators", "timestamp")

    def __init__(
        self, index: int, item: Item, key: float, timestamp: float
    ) -> None:
        self.index = index
        self.item = item
        self.key = key
        self.dominators = 0  # later arrivals with a strictly larger key
        self.timestamp = timestamp


class SlidingWindowWeightedSWOR:
    """Exact weighted SWOR over any recent window of a weighted stream.

    Parameters
    ----------
    sample_size:
        ``s`` — the sample size served for any queried window.
    rng:
        Randomness source (one exponential per arrival — both insertion
        paths consume exactly this, in arrival order).
    horizon:
        Optional maximum window length; arrivals older than the horizon
        are discarded outright (bounds worst-case space for infinite
        streams).  See the module docstring for the window-validation
        contract this implies.

    Notes
    -----
    Retained set size is ``O(s·log(n/s))`` in expectation for ``n``
    arrivals in the horizon: the ``i``-th most recent arrival survives
    only if its key ranks in the top ``s`` among ``i`` i.i.d.-shaped
    competitors, an event of probability ``~min(1, s/i)``.

    Every arrival also carries a *timestamp* (defaulting to its arrival
    index), which must be non-decreasing; timestamp-suffix queries
    (:meth:`sample_since`) are exact by the same dominance argument,
    since a timestamp suffix is an arrival-order suffix.
    """

    def __init__(
        self,
        sample_size: int,
        rng: random.Random,
        horizon: Optional[int] = None,
    ) -> None:
        if sample_size <= 0:
            raise ConfigurationError(
                f"sample size must be positive, got {sample_size}"
            )
        if horizon is not None and horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        self.sample_size = sample_size
        self.horizon = horizon
        self._rng = rng
        self._entries: List[_Entry] = []  # in arrival order
        self._last_timestamp = -math.inf
        self.items_seen = 0

    # -- insertion -----------------------------------------------------

    def _timestamp_of(self, timestamp: Optional[float]) -> float:
        ts = float(self.items_seen - 1) if timestamp is None else float(timestamp)
        if ts < self._last_timestamp:
            raise ConfigurationError(
                f"timestamps must be non-decreasing: {ts} after "
                f"{self._last_timestamp}"
            )
        self._last_timestamp = ts
        return ts

    def insert(self, item: Item, timestamp: Optional[float] = None) -> None:
        """Observe one arrival; O(retained) time.

        ``timestamp`` defaults to the arrival index and must be
        non-decreasing across insertions.
        """
        w = item.weight
        if w <= 0 or w != w:  # noqa: PLR0124 - NaN check
            raise InvalidWeightError(f"invalid weight {w} for item {item.ident}")
        self.items_seen += 1
        key = w / exponential(self._rng)
        s = self.sample_size
        survivors: List[_Entry] = []
        for entry in self._entries:
            if entry.key < key:
                entry.dominators += 1
            if entry.dominators < s:
                survivors.append(entry)
        survivors.append(
            _Entry(self.items_seen - 1, item, key, self._timestamp_of(timestamp))
        )
        if self.horizon is not None:
            cutoff = self.items_seen - self.horizon
            survivors = [e for e in survivors if e.index >= cutoff]
        self._entries = survivors

    def insert_columns(self, idents, weights, timestamps=None) -> None:
        """Observe a whole column of arrivals at once.

        Bit-identical to calling :meth:`insert` per arrival — the same
        scalar uniforms are drawn from ``rng`` in the same order (so
        chunk boundaries never change the sample) — but the dominance
        bookkeeping is bulk: per internal chunk, each retained entry's
        dominator increment is its rank deficit against the chunk's
        sorted keys (one vectorized ``searchsorted`` for *all* retained
        entries), and the chunk's internal later-larger counts come
        from block-wise prefix ranks (a ``b x b`` comparison table per
        block plus ranks against the running sorted suffix) instead of
        the per-item ``O(retained)`` scan.  ``Item`` objects are built
        only for arrivals that survive their own chunk.

        ``idents`` / ``weights`` (and optional ``timestamps``, which
        must be non-decreasing) are parallel sequences; numpy columns
        from a :class:`~repro.stream.columns.ColumnarStream` are
        consumed zero-copy.  The whole column is validated up front —
        an invalid weight raises before *any* arrival is inserted
        (fail-fast, unlike the per-item path's partial progress).
        Falls back to per-item insertion when numpy is unavailable
        (identical result, by the bit-parity above).
        """
        n = len(weights)
        if n == 0:
            return
        if _np is None:
            for i in range(n):
                self.insert(
                    Item(idents[i], weights[i]),
                    None if timestamps is None else timestamps[i],
                )
            return
        idents = _np.ascontiguousarray(idents, dtype=_np.int64)
        weights = _np.ascontiguousarray(weights, dtype=_np.float64)
        if len(idents) != n or (timestamps is not None and len(timestamps) != n):
            raise ConfigurationError("insert_columns columns disagree in length")
        bad = ~(weights > 0.0)  # catches <= 0 and NaN in one mask
        if bad.any():
            i = int(_np.flatnonzero(bad)[0])
            raise InvalidWeightError(
                f"invalid weight {float(weights[i])} for item {int(idents[i])}"
            )
        if timestamps is not None:
            timestamps = _np.ascontiguousarray(timestamps, dtype=_np.float64)
            if len(timestamps) > 1 and (_np.diff(timestamps) < 0).any():
                raise ConfigurationError(
                    "timestamps must be non-decreasing within a column"
                )
        for lo in range(0, n, _INSERT_CHUNK):
            hi = min(lo + _INSERT_CHUNK, n)
            self._insert_chunk(
                idents[lo:hi],
                weights[lo:hi],
                None if timestamps is None else timestamps[lo:hi],
            )

    def _insert_chunk(self, idents, weights, timestamps) -> None:
        """One bulk round: draw keys, count dominators, keep survivors."""
        m = len(weights)
        s = self.sample_size
        base = self.items_seen
        first_ts = float(base) if timestamps is None else float(timestamps[0])
        if first_ts < self._last_timestamp:
            raise ConfigurationError(
                f"timestamps must be non-decreasing: {first_ts} after "
                f"{self._last_timestamp}"
            )
        # The exact scalar draw sequence of per-item insert():
        # one inverted uniform per arrival, redrawing on u <= 0.
        rand = self._rng.random
        log = math.log
        us = []
        for _ in range(m):
            u = rand()
            while u <= 0.0:
                u = rand()
            us.append(-log(u))
        keys = weights / _np.asarray(us)
        keys_sorted = _np.sort(keys)
        # Retained entries: dominator increment = # chunk keys strictly
        # greater — a rank deficit in the chunk's sorted keys.
        survivors: List[_Entry] = []
        if self._entries:
            old_keys = _np.fromiter(
                (e.key for e in self._entries),
                dtype=_np.float64,
                count=len(self._entries),
            )
            incs = m - _np.searchsorted(keys_sorted, old_keys, side="right")
            for entry, inc in zip(self._entries, incs.tolist()):
                entry.dominators += inc
                if entry.dominators < s:
                    survivors.append(entry)
        # Chunk-internal dominators (kernel-tier): exact integer counts
        # of strictly-later strictly-larger keys — block-table prefix
        # ranks on the numpy backend, a Fenwick tree over searchsorted
        # ranks on the compiled one; identical by exactness.
        dominators = _active_kernels().window_dominators(keys)
        self.items_seen += m
        for i in _np.flatnonzero(dominators < s).tolist():
            entry = _Entry(
                base + i,
                Item(int(idents[i]), float(weights[i])),
                float(keys[i]),
                float(base + i) if timestamps is None else float(timestamps[i]),
            )
            entry.dominators = int(dominators[i])
            survivors.append(entry)
        self._last_timestamp = (
            float(base + m - 1) if timestamps is None else float(timestamps[-1])
        )
        if self.horizon is not None:
            cutoff = self.items_seen - self.horizon
            survivors = [e for e in survivors if e.index >= cutoff]
        self._entries = survivors

    # -- queries -------------------------------------------------------

    def retained_count(self) -> int:
        """Number of retained candidates (the space metric)."""
        return len(self._entries)

    def sample(self, window: Optional[int] = None) -> List[Item]:
        """Weighted SWOR of the last ``window`` arrivals (default: the
        whole horizon / stream).  Decreasing key order.  See the module
        docstring for the window-validation contract."""
        return [item for item, _ in self.sample_with_keys(window)]

    def sample_with_keys(
        self, window: Optional[int] = None
    ) -> List[Tuple[Item, float]]:
        """``(item, key)`` pairs for the window's top-``s`` keys.

        ``window`` is validated against the *retention guarantee*: it
        must be positive and, when a ``horizon`` is configured, at most
        the horizon (older data was discarded and the query would be
        silently wrong).  A window exceeding ``items_seen`` is valid in
        both modes and covers the whole retained stream — the answer an
        ``N``-long window gives before the ``N+1``-th arrival.
        """
        if window is not None:
            if window <= 0:
                raise ConfigurationError(f"window must be positive, got {window}")
            if self.horizon is not None and window > self.horizon:
                raise ConfigurationError(
                    f"window {window} exceeds horizon {self.horizon}: "
                    "arrivals beyond the horizon were discarded, so the "
                    "query cannot be answered exactly"
                )
            cutoff = self.items_seen - window
        else:
            cutoff = self.items_seen - (self.horizon or self.items_seen)
        eligible = [e for e in self._entries if e.index >= cutoff]
        eligible.sort(key=lambda e: -e.key)
        return [(e.item, e.key) for e in eligible[: self.sample_size]]

    def sample_since(self, timestamp: float) -> List[Tuple[Item, float]]:
        """``(item, key)`` pairs for the top-``s`` keys among arrivals
        with ``timestamp >= timestamp`` — a *timestamp-suffix* window.

        Exact by the dominance argument (non-decreasing timestamps make
        a timestamp suffix an arrival-order suffix).  Requires
        ``horizon=None``: with a finite horizon the sampler cannot
        prove the timestamp suffix lies inside the retained range, so
        the query is refused rather than answered wrong — use
        arrival-count windows (:meth:`sample_with_keys`) there.
        """
        if self.horizon is not None:
            raise ConfigurationError(
                "sample_since requires horizon=None (a finite horizon "
                "discards arrivals the timestamp suffix may cover); use "
                "count-based windows instead"
            )
        eligible = [e for e in self._entries if e.timestamp >= timestamp]
        eligible.sort(key=lambda e: -e.key)
        return [(e.item, e.key) for e in eligible[: self.sample_size]]

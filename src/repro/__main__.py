"""``python -m repro`` — dispatch to the CLI.

Guarded so that importing this module never runs the CLI: the sharded
engine's spawn-based worker processes (and anything else that re-imports
the main module, e.g. under ``--profile``) must not recursively
re-execute the command line.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())

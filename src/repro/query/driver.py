"""Concurrent multi-query driver: many protocols, one stream pass.

:class:`MultiQueryDriver` answers N heterogeneous registered queries
over a *single shared pass* of a
:class:`~repro.stream.item.DistributedStream` **or**
:class:`~repro.stream.columns.ColumnarStream` — the pass needs only the
engine-facing stream surface (``arrays()`` / a lazy ``items``
sequence), so a columnar stream is consumed without ever
materializing per-arrival objects: network-backed queries read the
ident/weight columns through zero-copy
:class:`~repro.runtime.batched.ItemBatch` views, and centralized
backends take column slices through ``observe_columns``.
Each query is backed by its own protocol instance (weighted/unweighted
SWOR, SWR, L1 tracker, sliding-window sampler) with an independent,
deterministically derived RNG substream — the same sample a standalone
run with :func:`repro.query.backends.query_seed` would produce — while
the driver amortizes the batched engine's per-batch work across all of
them:

* the stream's structure-of-arrays view is sliced and the per-site
  grouping (one stable argsort per batch) is computed **once**, and the
  resulting zero-copy :class:`~repro.runtime.batched.ItemBatch` views
  are handed to every query's sites;
* queries backed by *same-config* weighted SWORs are **fused**: the
  batch's level indices, the early/regular split, and the shared
  ``EARLY`` message objects (with precomputed level hints) are computed
  once per (batch, site), leaving only the per-query exponential draws,
  threshold filtering, and coordinator work;
* control propagation follows the batched engine's bounded-staleness
  contract exactly, so per-query message counts match a standalone
  batched run message for message.

The batch schedule mirrors :class:`~repro.runtime.batched.BatchedEngine`
(doubling ramp, checkpoint-exact splits), so a driver with a single
query is bit-identical to a standalone run under the batched engine —
and with ``engine="reference"`` (batch size 1) to the reference engine.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

try:  # numpy unlocks the shared vectorized pass; gated, not required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError
from ..common.rng import BatchRandom
from ..core.config import SworConfig
from ..core.levels import levels_of_array
from ..net.counters import MessageCounters
from ..net.messages import EARLY, Message, MessagePack, REGULAR
from ..obs import NULL_REGISTRY
from ..runtime.batched import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_INITIAL_BATCH_SIZE,
    ItemBatch,
    batch_windows,
    site_buckets,
    site_runs,
)
from ..stream.item import DistributedStream, Item
from .backends import (
    CentralizedQuery,
    CompiledQuery,
    NetworkBackedQuery,
    _SworBackedQuery,
    compile_query,
)
from .model import Query, QueryCatalog

__all__ = ["MultiQueryDriver", "MultiQueryResult"]


class MultiQueryResult:
    """Answers and accounting from one shared pass.

    Attributes
    ----------
    answers:
        Final per-query answers (``{name: answer}``; answer types vary
        by query — :class:`~repro.query.estimators.Estimate`, dicts of
        estimates, or item lists for heavy hitters).
    counters:
        Per-query :class:`~repro.net.counters.MessageCounters` for the
        network-backed queries (centralized backends send no messages).
    items_processed:
        Global arrivals replayed.
    """

    def __init__(
        self,
        answers: Dict[str, object],
        counters: Dict[str, MessageCounters],
        items_processed: int,
        snapshots: List[Tuple[int, Dict[str, object]]],
    ) -> None:
        self.answers = answers
        self.counters = counters
        self.items_processed = items_processed
        self._snapshots = dict(snapshots)

    @property
    def checkpoints(self) -> List[int]:
        """Checkpoint times with recorded snapshots, ascending."""
        return sorted(self._snapshots)

    def answers_at(self, checkpoint: int) -> Dict[str, object]:
        """Per-query answers snapshotted after item ``checkpoint``."""
        try:
            return self._snapshots[checkpoint]
        except KeyError:
            raise ConfigurationError(
                f"no snapshot at {checkpoint}; recorded: {self.checkpoints}"
            ) from None


class _GenericConsumer:
    """Drives one network-backed query through the shared batches the
    same way the batched engine would: bulk hook, then flush.

    In columnar mode the site's
    :meth:`~repro.runtime.interfaces.SiteAlgorithm.on_columns` hook is
    fed the batch's ident/weight columns directly and any resulting
    :class:`~repro.net.messages.MessagePack` is delivered whole —
    exactly what a standalone
    :class:`~repro.runtime.ColumnarEngine` run of the same protocol
    does, so per-query samples and counters stay bit-identical to it
    (SWR, unweighted, and L1 queries all ride their native pack paths).
    """

    __slots__ = ("instance", "network", "columnar")

    def __init__(
        self, instance: NetworkBackedQuery, columnar: bool = False
    ) -> None:
        self.instance = instance
        self.network = instance.network
        self.columnar = columnar

    def site_batch(self, site_id: int, batch: Sequence[Item]) -> None:
        network = self.network
        idents = getattr(batch, "idents", None)
        if self.columnar and idents is not None and len(batch) > 1:
            result = network.sites[site_id].on_columns(idents, batch.weights)
            if isinstance(result, MessagePack):
                network.deliver_pack(site_id, result)
            else:
                for message in result:
                    network.deliver_upstream(site_id, message)
            return
        for message in network.sites[site_id].on_items(batch):
            network.deliver_upstream(site_id, message)


class _FusedSworGroup:
    """Shared site-side pass for same-config weighted-SWOR queries.

    For each (batch, site) the group computes once: the batch's level
    indices, the saturation split into early/regular arrivals, the
    shared ``EARLY`` :class:`~repro.net.messages.Message` objects (each
    carrying a precomputed level hint the coordinators reuse), and the
    regular arrivals' weight vector.  Each member query then only draws
    its own batch exponentials, filters on its own epoch threshold, and
    delivers through its own network — so the sample each member ends
    with is bit-identical to a standalone batched run with the same
    seed, at a fraction of the site-side cost.

    Any state divergence between members' site views (impossible for
    same-config members, but checked defensively) falls back to the
    generic per-query path for that site batch.

    In *columnar* mode (``MultiQueryDriver(engine="columnar")``) the
    shared site pass additionally skips the per-message ``Message``
    objects: the early/regular split is computed once, and each member
    delivers a single :class:`~repro.net.messages.MessagePack` per
    (site, batch) — all members' packs aliasing the same early columns
    and the same pre-built early ``Item`` memo — through its own
    network's :meth:`~repro.runtime.network.Network.deliver_pack`.
    """

    __slots__ = ("config", "members", "protocols", "_r", "columnar")

    def __init__(
        self,
        config: SworConfig,
        members: List[NetworkBackedQuery],
        columnar: bool = False,
    ) -> None:
        self.config = config
        self.members = members
        self.protocols = [
            m.protocol if isinstance(m, _SworBackedQuery) else m.tracker.protocol
            for m in members
        ]
        self._r = config.r
        self.columnar = columnar

    def _fallback(self, site_id: int, batch: Sequence[Item]) -> None:
        for protocol in self.protocols:
            network = protocol.network
            for message in network.sites[site_id].on_items(batch):
                network.deliver_upstream(site_id, message)

    def site_batch(self, site_id: int, batch: "ItemBatch") -> None:
        if self.columnar:
            self._site_batch_columnar(site_id, batch)
            return
        n = len(batch)
        if n <= 1 or _np is None:
            self._fallback(site_id, batch)
            return
        weights = batch.weights
        first = self.protocols[0].sites[site_id]
        mask = first._saturated_mask
        for protocol in self.protocols[1:]:
            if protocol.sites[site_id]._saturated_mask != mask:
                self._fallback(site_id, batch)  # pragma: no cover - defensive
                return
        levels = levels_of_array(weights, self._r)
        if mask:
            early = ~first._saturation_table(int(levels.max()))[levels]
            early_idx = _np.flatnonzero(early)
            regular_idx = _np.flatnonzero(~early)
        else:
            early_idx = _np.arange(n)
            regular_idx = None
        # Materialize through the view's backing list once — plain list
        # indexing here beats per-access numpy scalar indexing, and the
        # stream's own Item objects ride along as coordinator hints.
        source, positions = batch._source, batch._positions.tolist()
        levels_list = levels.tolist()
        early_messages: List[Message] = []
        for i in early_idx.tolist():
            item = source[positions[i]]
            message = Message(EARLY, (item.ident, item.weight))
            message.early_hint = (item, levels_list[i])
            early_messages.append(message)
        if regular_idx is None or len(regular_idx) == 0:
            regular_weights = None
            num_regular = 0
            regular_items: Sequence[Item] = ()
        else:
            regular_weights = weights[regular_idx]
            num_regular = len(regular_idx)
            regular_items = [source[positions[i]] for i in regular_idx.tolist()]
        for protocol in self.protocols:
            site = protocol.sites[site_id]
            site.items_seen += n
            threshold = site._threshold  # pre-flush view, like on_items
            deliver = protocol.network.deliver_upstream
            for message in early_messages:
                deliver(site_id, message)
            if num_regular:
                if site._batch_rng is None:
                    site._batch_rng = BatchRandom(site._rng)
                draws = site._batch_rng.exponentials(num_regular)
                site.exponentials_generated += num_regular
                keys = regular_weights / draws
                for j in _np.flatnonzero(keys > threshold).tolist():
                    item = regular_items[j]
                    deliver(
                        site_id,
                        Message(REGULAR, (item.ident, item.weight, float(keys[j]))),
                    )

    def _site_batch_columnar(self, site_id: int, batch: "ItemBatch") -> None:
        """One shared early/regular split, one pack per member query.

        Decision-for-decision and draw-for-draw identical to a
        standalone columnar run of each member (and hence to a batched
        one): per member only the batch exponentials, the threshold
        filter, and the pack delivery remain.
        """
        n = len(batch)
        idents = batch.idents
        if n <= 1 or _np is None or idents is None:
            self._fallback(site_id, batch)
            return
        weights = batch.weights
        first = self.protocols[0].sites[site_id]
        mask = first._saturated_mask
        for protocol in self.protocols[1:]:
            if protocol.sites[site_id]._saturated_mask != mask:
                self._fallback(site_id, batch)  # pragma: no cover - defensive
                return
        levels = levels_of_array(weights, self._r)
        early_idents = early_weights = early_levels = None
        regular_idents = regular_weights = None
        early_idx = None
        if mask:
            saturated = first._saturation_table(int(levels.max()))[levels]
            num_saturated = int(_np.count_nonzero(saturated))
            if num_saturated == n:
                regular_idents, regular_weights = idents, weights
            elif num_saturated == 0:
                early_idents, early_weights, early_levels = idents, weights, levels
                early_idx = range(n)
            else:
                early = ~saturated
                early_idents = idents[early]
                early_weights = weights[early]
                early_levels = levels[early]
                early_idx = _np.flatnonzero(early).tolist()
                regular_idents = idents[saturated]
                regular_weights = weights[saturated]
        else:
            early_idents, early_weights, early_levels = idents, weights, levels
            early_idx = range(n)
        early_items = None
        if early_idx is not None:
            # One shared Item memo — the stream's own objects — parked
            # by every member coordinator (like Message.early_hint).
            source, positions = batch._source, batch._positions
            early_items = [source[positions[i]] for i in early_idx]
        for protocol in self.protocols:
            site = protocol.sites[site_id]
            site.items_seen += n
            if regular_weights is None:
                pack = MessagePack(early_idents, early_weights, early_levels)
                pack.early_items = early_items
                protocol.network.deliver_pack(site_id, pack)
                continue
            threshold = site._threshold  # pre-flush view, like on_columns
            if site._batch_rng is None:
                site._batch_rng = BatchRandom(site._rng)
            m = len(regular_weights)
            draws = site._batch_rng.exponentials(m)
            site.exponentials_generated += m
            keys = _np.divide(regular_weights, draws, out=draws)
            send = keys > threshold
            num_send = int(_np.count_nonzero(send))
            if num_send == 0:
                if early_items is None:
                    continue
                pack = MessagePack(early_idents, early_weights, early_levels)
            elif num_send == m:
                pack = MessagePack(
                    early_idents,
                    early_weights,
                    early_levels,
                    regular_idents,
                    regular_weights,
                    keys,
                )
            else:
                pack = MessagePack(
                    early_idents,
                    early_weights,
                    early_levels,
                    regular_idents[send],
                    regular_weights[send],
                    keys[send],
                )
            pack.early_items = early_items
            protocol.network.deliver_pack(site_id, pack)


class MultiQueryDriver:
    """Run a catalog of queries concurrently over one stream pass.

    Parameters
    ----------
    queries:
        A :class:`~repro.query.model.QueryCatalog` or iterable of
        :class:`~repro.query.model.Query` specs.
    num_sites:
        ``k`` — must match the stream's site count.
    seed:
        Root seed; each query's protocol derives an independent seed
        via :func:`repro.query.backends.query_seed`.
    engine:
        ``"batched"`` (the shared vectorized pass, default),
        ``"columnar"`` (the batched schedule with the zero-object pack
        data plane of :class:`~repro.runtime.ColumnarEngine` for fused
        SWOR groups — per-query results stay bit-identical), or
        ``"reference"`` (batch size 1 — the synchronous round model,
        bit-identical to :class:`~repro.runtime.ReferenceEngine`).
        ``"sharded"`` is accepted as a passthrough and selects the
        columnar data plane: the driver's fused multi-query pass is
        itself the execution engine and runs in-process (per-query
        results are bit-identical either way); shard-parallel *site*
        execution applies to single-protocol runs via
        :class:`~repro.runtime.ShardedEngine`.
    batch_size / initial_batch_size:
        Batch ramp for the batched engine, as in
        :class:`~repro.runtime.batched.BatchedEngine`.
    confidence:
        Nominal CI level for all estimator-backed answers.
    fuse:
        Allow the fused same-config SWOR fast path (disable to force
        the generic per-query path, e.g. for benchmarking the fusion
        gain itself).
    registry:
        Optional :class:`~repro.obs.MetricsRegistry`; when attached,
        each run exports per-query fold time
        (``repro_query_fold_seconds_total{query=...}``), per-query
        message gauges, and driver run/item counters.  Answers and
        counters are bit-identical with and without it.
    """

    def __init__(
        self,
        queries: Union[QueryCatalog, Iterable[Query]],
        num_sites: int,
        seed: Optional[int] = None,
        engine: str = "batched",
        batch_size: Optional[int] = None,
        initial_batch_size: Optional[int] = None,
        confidence: float = 0.95,
        fuse: bool = True,
        registry=None,
    ) -> None:
        if num_sites <= 0:
            raise ConfigurationError(f"num_sites must be positive, got {num_sites}")
        if engine not in ("batched", "columnar", "sharded", "reference"):
            raise ConfigurationError(
                "engine must be 'batched', 'columnar', 'sharded', or "
                f"'reference', got {engine!r}"
            )
        # None means "engine default", matching the protocol facades.
        if batch_size is None:
            batch_size = DEFAULT_BATCH_SIZE
        if initial_batch_size is None:
            initial_batch_size = DEFAULT_INITIAL_BATCH_SIZE
        if batch_size <= 0 or initial_batch_size <= 0:
            raise ConfigurationError("batch sizes must be positive")
        catalog = (
            queries if isinstance(queries, QueryCatalog) else QueryCatalog(list(queries))
        )
        if len(catalog) == 0:
            raise ConfigurationError("need at least one query")
        self.catalog = catalog
        self.num_sites = num_sites
        self.seed = seed
        self.engine = engine
        if engine == "reference":
            batch_size = initial_batch_size = 1
        self.batch_size = batch_size
        self.initial_batch_size = min(initial_batch_size, batch_size)
        self.confidence = confidence
        #: Whether the shared pass runs the zero-object pack data plane
        #: (the single source for the three mode checks below).
        self._columnar_plane = engine in ("columnar", "sharded")
        self.fuse = fuse and (engine == "batched" or self._columnar_plane)
        self.compiled: List[CompiledQuery] = [
            compile_query(query, num_sites, seed, confidence) for query in catalog
        ]
        self._network_backed = [
            c for c in self.compiled if isinstance(c, NetworkBackedQuery)
        ]
        self._centralized = [
            c for c in self.compiled if isinstance(c, CentralizedQuery)
        ]
        self.items_processed = 0
        #: Telemetry sink (:mod:`repro.obs`); the no-op registry by
        #: default, so un-instrumented drivers time nothing per batch.
        self.registry = NULL_REGISTRY if registry is None else registry

    # -- answers ------------------------------------------------------

    def answers(self) -> Dict[str, object]:
        """Live per-query answers at this instant (valid at any step)."""
        return {c.name: c.answer() for c in self.compiled}

    def counters(self) -> Dict[str, MessageCounters]:
        """Per-query message counters for the network-backed queries."""
        return {c.name: c.counters for c in self._network_backed}

    def __getitem__(self, name: str) -> CompiledQuery:
        for c in self.compiled:
            if c.name == name:
                return c
        raise ConfigurationError(f"unknown query {name!r}")

    # -- the shared pass ----------------------------------------------

    def _consumers(self) -> List[object]:
        """Group fusable same-config SWOR queries; others run generic."""
        fusable: Dict[SworConfig, List[NetworkBackedQuery]] = {}
        consumers: List[object] = []
        generic: List[NetworkBackedQuery] = []
        for instance in self._network_backed:
            config = getattr(instance, "fuse_config", None)
            if (
                self.fuse
                and _np is not None
                and config is not None
                and config.level_sets_enabled
                and not config.count_bits
            ):
                fusable.setdefault(config, []).append(instance)
            else:
                generic.append(instance)
        for config, members in fusable.items():
            if len(members) >= 2:
                consumers.append(
                    _FusedSworGroup(
                        config, members, columnar=self._columnar_plane
                    )
                )
            else:
                generic.extend(members)
        columnar = self._columnar_plane
        consumers.extend(
            _GenericConsumer(instance, columnar=columnar)
            for instance in generic
        )
        return consumers

    def run(
        self,
        stream: DistributedStream,
        checkpoints: Optional[Iterable[int]] = None,
    ) -> MultiQueryResult:
        """Replay ``stream`` once, feeding every query.

        ``stream`` may be a :class:`~repro.stream.item.DistributedStream`
        or a :class:`~repro.stream.columns.ColumnarStream`; per-query
        answers are bit-identical between the two representations of
        the same data (``Item`` objects are only ever built lazily,
        for arrivals that reach a sample or a level set).

        ``checkpoints`` (1-indexed global item counts) snapshot every
        query's answer mid-stream; batches split so each snapshot is
        taken after exactly that many arrivals (see
        :meth:`MultiQueryResult.answers_at`).  Like the batched
        engine's, checkpoint counts are cumulative across ``run``
        calls: a driver reused on a second stream keeps one clock.
        """
        if stream.num_sites != self.num_sites:
            raise ConfigurationError(
                f"stream has {stream.num_sites} sites, driver has {self.num_sites}"
            )
        n = len(stream)
        base = self.items_processed
        marks: List[int] = (
            [t - base for t in sorted(set(checkpoints)) if base < t <= base + n]
            if checkpoints
            else []
        )
        mark_set = set(marks)
        snapshots: List[Tuple[int, Dict[str, object]]] = []
        consumers = self._consumers()
        centralized = self._centralized
        networks = [instance.network for instance in self._network_backed]
        items = stream.items
        arrays = stream.arrays()
        # Centralized backends consume columns whenever the stream has
        # them (ident column present) — bit-identical answers, no
        # transient Item chunks; otherwise they get lazy item slices.
        columns_for_centralized = (
            arrays is not None and arrays[2] is not None and centralized
        )
        ts_column = getattr(stream, "timestamps", None)
        registry = self.registry
        # Per-consumer fold clocks, allocated only when a live registry
        # is attached (timing is per (window, site, consumer) — the
        # null registry pays zero perf_counter calls).
        timings = [0.0] * len(consumers) if registry.enabled else None
        span = registry.span("driver_run")
        # batch_windows is the same schedule BatchedEngine iterates —
        # the source of the driver's run-for-run parity with it.
        with span:
            for lo, hi in batch_windows(
                n, self.batch_size, self.initial_batch_size, marks
            ):
                if arrays is not None:
                    self._run_window_numpy(
                        consumers, items, arrays, lo, hi,
                        self._columnar_plane,
                        timings,
                    )
                else:
                    self._run_window_python(
                        consumers, stream, lo, hi, timings
                    )
                if columns_for_centralized:
                    ts = None if ts_column is None else ts_column[lo:hi]
                    for instance in centralized:
                        instance.observe_columns(
                            arrays[2][lo:hi], arrays[1][lo:hi], ts
                        )
                elif centralized:
                    window_items = items[lo:hi]
                    for instance in centralized:
                        instance.observe_items(window_items)
                for network in networks:
                    network.items_processed += hi - lo
                self.items_processed += hi - lo
                if hi in mark_set:
                    snapshots.append((base + hi, self.answers()))
        if timings is not None:
            self._export_run(consumers, timings, n)
        return MultiQueryResult(
            answers=self.answers(),
            counters=self.counters(),
            items_processed=self.items_processed,
            snapshots=snapshots,
        )

    @staticmethod
    def _run_window_numpy(
        consumers: List[object],
        items: List[Item],
        arrays,
        lo: int,
        hi: int,
        columnar: bool = False,
        timings: Optional[List[float]] = None,
    ) -> None:
        """One argsort groups the window for *every* query's sites."""
        assignment, weights, idents = arrays
        for site_id, order_positions in site_runs(assignment[lo:hi]):
            positions = order_positions + lo
            batch = ItemBatch(
                items,
                positions,
                weights[positions],
                idents[positions] if columnar and idents is not None else None,
            )
            if timings is None:
                for consumer in consumers:
                    consumer.site_batch(site_id, batch)
            else:
                for index, consumer in enumerate(consumers):
                    t0 = time.perf_counter()
                    consumer.site_batch(site_id, batch)
                    timings[index] += time.perf_counter() - t0

    @staticmethod
    def _run_window_python(
        consumers: List[object],
        stream: DistributedStream,
        lo: int,
        hi: int,
        timings: Optional[List[float]] = None,
    ) -> None:
        """Numpy-free fallback, sharing the engine's bucketing."""
        for site_id, batch in site_buckets(
            stream.assignment, stream.items, lo, hi
        ):
            if timings is None:
                for consumer in consumers:
                    consumer.site_batch(site_id, batch)
            else:
                for index, consumer in enumerate(consumers):
                    t0 = time.perf_counter()
                    consumer.site_batch(site_id, batch)
                    timings[index] += time.perf_counter() - t0

    def _export_run(self, consumers, timings, items: int) -> None:
        """Export one run's driver telemetry (live registry only)."""
        registry = self.registry
        fold = registry.counter(
            "repro_query_fold_seconds_total",
            "per-query seconds in the shared site-pass/fold loop "
            "(fused groups are labeled name1+name2+...)",
            labels=("query",),
        )
        for consumer, seconds in zip(consumers, timings):
            if isinstance(consumer, _FusedSworGroup):
                label = "+".join(m.name for m in consumer.members)
            else:
                label = consumer.instance.name
            fold.labels(query=label).inc(seconds)
        registry.counter(
            "repro_driver_runs_total", "completed MultiQueryDriver runs"
        ).inc()
        registry.counter(
            "repro_driver_items_total",
            "stream arrivals replayed through the shared pass",
        ).inc(items)
        messages = registry.gauge(
            "repro_query_messages",
            "cumulative protocol messages per network-backed query",
            labels=("query", "direction"),
        )
        for name, counters in self.counters().items():
            messages.labels(query=name, direction="upstream").set(
                counters.upstream
            )
            messages.labels(query=name, direction="downstream").set(
                counters.downstream
            )

"""Query & estimation subsystem: answers over live protocol samples.

The protocols of :mod:`repro.core` maintain samples; this package turns
them into *answers*:

* :mod:`repro.query.estimators` — Horvitz–Thompson subset-sum / count /
  mean / frequency and weighted-quantile estimators over ``(item, key)``
  samples, each returning an :class:`Estimate` with a variance /
  confidence-interval object;
* :mod:`repro.query.model` — declarative :class:`Query` specs and the
  :class:`QueryCatalog` that registers them;
* :mod:`repro.query.backends` — compilation of specs onto protocol
  instances (weighted/unweighted SWOR, SWR, L1, sliding window);
* :mod:`repro.query.driver` — the :class:`MultiQueryDriver`, which runs
  every registered query concurrently over **one shared pass** of a
  distributed stream, amortizing the batched engine's vectorized
  site-side work across queries while keeping each query's sample
  bit-identical to a standalone run.

Quickstart::

    import random
    from repro.query import MultiQueryDriver, QueryCatalog, SubsetSumQuery
    from repro.stream import round_robin, zipf_stream

    stream = round_robin(zipf_stream(100_000, random.Random(0)), 16)
    catalog = QueryCatalog([
        SubsetSumQuery("even", predicate=lambda it: it.ident % 2 == 0),
        SubsetSumQuery("total"),
    ])
    result = MultiQueryDriver(catalog, num_sites=16, seed=7).run(stream)
    print(result.answers["even"])      # Estimate with a 95% CI
"""

from .estimators import (
    Estimate,
    count_from_uniform_sample,
    frequency,
    group_by_sum,
    ht_pairs,
    inclusion_probability,
    mean_weight,
    subset_count,
    subset_sum,
    swr_mean,
    total_weight_estimate,
    weighted_quantile,
)
from .model import (
    CountQuery,
    FrequencyQuery,
    GroupByQuery,
    HeavyHittersQuery,
    MeanWeightQuery,
    QuantileQuery,
    Query,
    QueryCatalog,
    SlidingWindowQuery,
    SubsetSumQuery,
    TotalWeightQuery,
    WeightedMeanQuery,
)
from .backends import CompiledQuery, compile_query, query_seed
from .driver import MultiQueryDriver, MultiQueryResult

__all__ = [
    # estimators
    "Estimate",
    "inclusion_probability",
    "ht_pairs",
    "subset_sum",
    "total_weight_estimate",
    "subset_count",
    "mean_weight",
    "frequency",
    "group_by_sum",
    "weighted_quantile",
    "count_from_uniform_sample",
    "swr_mean",
    # model
    "Query",
    "SubsetSumQuery",
    "CountQuery",
    "MeanWeightQuery",
    "FrequencyQuery",
    "GroupByQuery",
    "QuantileQuery",
    "HeavyHittersQuery",
    "TotalWeightQuery",
    "WeightedMeanQuery",
    "SlidingWindowQuery",
    "QueryCatalog",
    # backends / driver
    "CompiledQuery",
    "compile_query",
    "query_seed",
    "MultiQueryDriver",
    "MultiQueryResult",
]

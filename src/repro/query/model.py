"""Declarative query specs and the catalog that registers them.

A :class:`Query` names *what* should be answered over the distributed
stream; :mod:`repro.query.backends` compiles each spec into the protocol
instance that can answer it (weighted/unweighted SWOR, SWR, the L1
tracker, or the sliding-window sampler), and
:class:`repro.query.driver.MultiQueryDriver` runs all of the compiled
instances over one shared pass of the stream.

The specs are deliberately plain dataclasses — they carry predicates /
key functions and protocol sizing, no state — so a
:class:`QueryCatalog` can be built once and reused across streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..common.errors import ConfigurationError
from ..stream.item import Item

__all__ = [
    "Query",
    "SubsetSumQuery",
    "CountQuery",
    "MeanWeightQuery",
    "FrequencyQuery",
    "GroupByQuery",
    "QuantileQuery",
    "HeavyHittersQuery",
    "TotalWeightQuery",
    "WeightedMeanQuery",
    "SlidingWindowQuery",
    "QueryCatalog",
]


@dataclass(frozen=True)
class Query:
    """Base spec: a unique name plus whatever the subtype needs."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("query name must be non-empty")

    def describe(self) -> str:
        """One-line human description (CLI / dashboard rows)."""
        return type(self).__name__


@dataclass(frozen=True)
class SubsetSumQuery(Query):
    """Estimate ``Σ w_i`` over items satisfying ``predicate``.

    Backed by a weighted SWOR of size ``sample_size`` with
    Horvitz–Thompson inverse-inclusion weighting
    (:func:`repro.query.estimators.subset_sum`).
    """

    predicate: Optional[Callable[[Item], bool]] = None
    sample_size: int = 64

    def describe(self) -> str:
        scope = "all items" if self.predicate is None else "predicate"
        return f"subset-sum over {scope} (swor s={self.sample_size})"


@dataclass(frozen=True)
class CountQuery(Query):
    """Estimate the *number* of items satisfying ``predicate``.

    Backed by the unweighted-SWOR baseline protocol (uniform keys), via
    :func:`repro.query.estimators.count_from_uniform_sample`.
    """

    predicate: Optional[Callable[[Item], bool]] = None
    sample_size: int = 64

    def describe(self) -> str:
        return f"item count (unweighted swor s={self.sample_size})"


@dataclass(frozen=True)
class MeanWeightQuery(Query):
    """Estimate the mean weight of items satisfying ``predicate``
    (ratio of HT sum and HT count over a weighted SWOR)."""

    predicate: Optional[Callable[[Item], bool]] = None
    sample_size: int = 64

    def describe(self) -> str:
        return f"mean weight (swor s={self.sample_size})"


@dataclass(frozen=True)
class FrequencyQuery(Query):
    """Estimate the total weight (or weight share) of one identifier."""

    ident: int = 0
    relative: bool = False
    sample_size: int = 64

    def describe(self) -> str:
        kind = "share" if self.relative else "weight"
        return f"frequency {kind} of ident {self.ident} (swor s={self.sample_size})"


@dataclass(frozen=True)
class GroupByQuery(Query):
    """Per-group subset-sum estimates under ``key`` (group-by aggregate)."""

    key: Callable[[Item], object] = field(default=lambda item: item.ident)
    sample_size: int = 64

    def describe(self) -> str:
        return f"group-by weight totals (swor s={self.sample_size})"


@dataclass(frozen=True)
class QuantileQuery(Query):
    """Estimate quantiles of the weight distribution over ``value``.

    ``qs`` lists the quantiles (each in (0,1)); the answer maps each
    ``q`` to an :class:`~repro.query.estimators.Estimate`.
    """

    qs: Tuple[float, ...] = (0.5,)
    value: Optional[Callable[[Item], float]] = None
    sample_size: int = 64

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.qs:
            raise ConfigurationError("QuantileQuery needs at least one q")
        for q in self.qs:
            if not 0.0 < q < 1.0:
                raise ConfigurationError(f"quantile q must be in (0,1), got {q}")

    def describe(self) -> str:
        qs = ",".join(f"{q:g}" for q in self.qs)
        return f"quantiles q={qs} (swor s={self.sample_size})"


@dataclass(frozen=True)
class HeavyHittersQuery(Query):
    """Report eps-residual heavy hitters (Theorem 4)."""

    eps: float = 0.1
    delta: float = 0.05
    sample_size_override: Optional[int] = None

    def describe(self) -> str:
        return f"residual heavy hitters (eps={self.eps:g})"


@dataclass(frozen=True)
class TotalWeightQuery(Query):
    """Track the stream's total weight ``W`` via the L1 tracker
    (Theorem 6) — a ``(1±eps)`` estimate at every step."""

    eps: float = 0.2
    delta: float = 0.1
    sample_size_override: Optional[int] = None
    duplication_override: Optional[int] = None

    def describe(self) -> str:
        return f"total weight via L1 tracker (eps={self.eps:g})"


@dataclass(frozen=True)
class WeightedMeanQuery(Query):
    """Estimate ``Σ w_i·value_i / W`` from a weighted SWR sample
    (each slot is an independent weighted draw; CLT interval)."""

    value: Optional[Callable[[Item], float]] = None
    sample_size: int = 64

    def describe(self) -> str:
        return f"weighted mean of value (swr s={self.sample_size})"


@dataclass(frozen=True)
class SlidingWindowQuery(Query):
    """Subset-sum estimate restricted to the last ``window`` arrivals,
    served by the centralized sliding-window sampler (Section 6)."""

    window: int = 1000
    predicate: Optional[Callable[[Item], bool]] = None
    sample_size: int = 64

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.window <= 0:
            raise ConfigurationError(
                f"window must be positive, got {self.window}"
            )

    def describe(self) -> str:
        return f"subset-sum over last {self.window} (sliding window s={self.sample_size})"


class QueryCatalog:
    """An ordered, name-unique collection of query specs.

    >>> catalog = QueryCatalog()
    >>> _ = catalog.register(SubsetSumQuery("total"))
    >>> [q.name for q in catalog]
    ['total']
    """

    def __init__(self, queries: Optional[List[Query]] = None) -> None:
        self._queries: Dict[str, Query] = {}
        for query in queries or []:
            self.register(query)

    def register(self, query: Query) -> Query:
        """Add a query; names must be unique.  Returns the query."""
        if not isinstance(query, Query):
            raise ConfigurationError(f"not a Query: {query!r}")
        if query.name in self._queries:
            raise ConfigurationError(f"duplicate query name {query.name!r}")
        self._queries[query.name] = query
        return query

    def get(self, name: str) -> Query:
        try:
            return self._queries[name]
        except KeyError:
            raise ConfigurationError(f"unknown query {name!r}") from None

    def names(self) -> List[str]:
        return list(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries.values())

    def __len__(self) -> int:
        return len(self._queries)

    def __contains__(self, name: object) -> bool:
        return name in self._queries

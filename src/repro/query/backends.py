"""Compile query specs into the protocol instances that answer them.

Each :class:`~repro.query.model.Query` subtype maps onto one of the
repo's protocols:

=========================  =================================================
query                      backing protocol
=========================  =================================================
SubsetSumQuery             weighted SWOR (Theorem 3) + HT estimator
MeanWeightQuery            weighted SWOR + ratio estimator
FrequencyQuery             weighted SWOR + HT / ratio estimator
GroupByQuery               weighted SWOR + per-group HT estimator
QuantileQuery              weighted SWOR + rank-inversion estimator
HeavyHittersQuery          residual heavy hitters (Theorem 4, itself a SWOR)
CountQuery                 unweighted SWOR baseline + ``(s-1)/τ`` estimator
WeightedMeanQuery          weighted SWR (Corollary 1) + CLT estimator
TotalWeightQuery           L1 tracker (Theorem 6)
SlidingWindowQuery         centralized sliding-window sampler (Section 6)
=========================  =================================================

Every compiled query derives its protocol seed deterministically from
the driver's root seed and the query name (:func:`query_seed`), so a
standalone run of the same protocol with the same derived seed produces
the *identical* sample — the property the multi-query benchmark and the
golden parity tests pin down.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

from ..common.errors import ConfigurationError
from ..common.rng import RandomSource
from ..core.config import SworConfig
from ..core.protocol import DistributedWeightedSWOR
from ..core.swr import DistributedWeightedSWR
from ..core.unweighted import DistributedUnweightedSWOR
from ..extensions.sliding_window import SlidingWindowWeightedSWOR
from ..heavy_hitters.residual import ResidualHeavyHitterTracker
from ..l1.tracker import L1Tracker
from ..net.counters import MessageCounters
from ..runtime.network import Network
from ..stream.item import Item
from . import estimators
from .estimators import Estimate
from .model import (
    CountQuery,
    FrequencyQuery,
    GroupByQuery,
    HeavyHittersQuery,
    MeanWeightQuery,
    Query,
    QuantileQuery,
    SlidingWindowQuery,
    SubsetSumQuery,
    TotalWeightQuery,
    WeightedMeanQuery,
)

__all__ = [
    "query_seed",
    "compile_query",
    "CompiledQuery",
    "NetworkBackedQuery",
    "CentralizedQuery",
]


def query_seed(root_seed: Optional[int], name: str) -> int:
    """The per-query protocol seed derived from ``(root seed, name)``.

    Exposed so benchmarks and tests can build a *standalone* protocol
    with the exact seed the driver would use, and compare samples
    bit for bit.
    """
    return RandomSource(root_seed).spawn(f"query:{name}").seed


class CompiledQuery(ABC):
    """A query spec bound to a live protocol instance."""

    def __init__(self, query: Query) -> None:
        self.query = query

    @property
    def name(self) -> str:
        return self.query.name

    @abstractmethod
    def answer(self) -> object:
        """Snapshot answer from the protocol's current state."""

    @property
    def counters(self) -> Optional[MessageCounters]:
        """Message counters, when the backend is a distributed protocol."""
        return None


class NetworkBackedQuery(CompiledQuery):
    """A compiled query driven through a coordinator/sites network.

    The driver replays stream batches straight into ``network.sites``
    and routes messages through ``network.deliver_upstream``, exactly
    like :class:`~repro.runtime.batched.BatchedEngine` does for a single
    protocol.
    """

    network: Network

    @property
    def counters(self) -> MessageCounters:
        return self.network.counters


class _SworBackedQuery(NetworkBackedQuery):
    """Queries answered from a live weighted SWOR (Theorem 3)."""

    def __init__(
        self,
        query: Query,
        protocol: DistributedWeightedSWOR,
        confidence: float,
    ) -> None:
        super().__init__(query)
        self.protocol = protocol
        self.network = protocol.network
        self.confidence = confidence

    @property
    def fuse_config(self) -> SworConfig:
        """Key for the driver's fused same-config site groups."""
        return self.protocol.config

    def entries(self) -> List[Tuple[Item, float]]:
        return self.protocol.sample_with_keys()

    def answer(self) -> object:
        query = self.query
        entries = self.entries()
        s = self.protocol.config.sample_size
        if isinstance(query, SubsetSumQuery):
            return estimators.subset_sum(
                entries, s, query.predicate, self.confidence
            )
        if isinstance(query, MeanWeightQuery):
            return estimators.mean_weight(
                entries, s, query.predicate, self.confidence
            )
        if isinstance(query, FrequencyQuery):
            return estimators.frequency(
                entries, s, query.ident, query.relative, self.confidence
            )
        if isinstance(query, GroupByQuery):
            return estimators.group_by_sum(
                entries, s, query.key, self.confidence
            )
        if isinstance(query, QuantileQuery):
            return {
                q: estimators.weighted_quantile(
                    entries, s, q, query.value, self.confidence
                )
                for q in query.qs
            }
        raise ConfigurationError(
            f"unsupported SWOR-backed query {type(query).__name__}"
        )


class _HeavyHittersBackedQuery(NetworkBackedQuery):
    """Heavy-hitter reports from the Theorem 4 tracker."""

    def __init__(self, query: HeavyHittersQuery, tracker: ResidualHeavyHitterTracker):
        super().__init__(query)
        self.tracker = tracker
        self.network = tracker.protocol.network

    @property
    def fuse_config(self) -> SworConfig:
        return self.tracker.protocol.config

    def answer(self) -> List[Item]:
        return self.tracker.heavy_hitters()


class _UnweightedBackedQuery(NetworkBackedQuery):
    """Count queries over the uniform-key baseline protocol."""

    def __init__(
        self,
        query: CountQuery,
        protocol: DistributedUnweightedSWOR,
        confidence: float,
    ) -> None:
        super().__init__(query)
        self.protocol = protocol
        self.network = protocol.network
        self.confidence = confidence

    def answer(self) -> Estimate:
        return estimators.count_from_uniform_sample(
            self.protocol.sample_with_keys(),
            self.protocol.sample_size,
            self.query.predicate,
            self.confidence,
        )


class _SwrBackedQuery(NetworkBackedQuery):
    """Weighted-mean queries over the with-replacement sampler."""

    def __init__(
        self,
        query: WeightedMeanQuery,
        protocol: DistributedWeightedSWR,
        confidence: float,
    ) -> None:
        super().__init__(query)
        self.protocol = protocol
        self.network = protocol.network
        self.confidence = confidence

    def answer(self) -> Estimate:
        return estimators.swr_mean(
            self.protocol.sample(), self.query.value, self.confidence
        )


class _L1BackedQuery(NetworkBackedQuery):
    """Total-weight tracking via the Theorem 6 L1 tracker."""

    def __init__(self, query: TotalWeightQuery, tracker: L1Tracker) -> None:
        super().__init__(query)
        self.tracker = tracker
        self.network = tracker.network

    def answer(self) -> Estimate:
        value = self.tracker.estimate()
        eps = self.tracker.eps
        # The (1±eps) multiplicative guarantee inverts to an interval
        # for the true W; exact while the tracker is still in its
        # before-first-epoch exact regime.
        return Estimate(
            value=value,
            variance=None,
            ci_low=value / (1.0 + eps),
            ci_high=value / (1.0 - eps) if eps < 1.0 else float("inf"),
            confidence=1.0 - self.tracker.delta,
            n_used=self.tracker.sample_size,
            method="l1-tracker",
        )


class CentralizedQuery(CompiledQuery):
    """A compiled query served by a centralized sampler at the
    coordinator; the driver feeds it the stream in global arrival order
    (no per-site state, no messages)."""

    @abstractmethod
    def observe_items(self, items: Sequence[Item]) -> None:
        """Consume a chunk of arrivals in global order."""

    def observe_columns(self, idents, weights, timestamps=None) -> None:
        """Consume a chunk of arrivals given as parallel columns.

        The columnar counterpart of :meth:`observe_items`, fed by the
        driver when the stream exposes columns (always for a
        :class:`~repro.stream.columns.ColumnarStream`, via the cached
        SoA view for an ``Item``-backed stream).  The default wraps the
        columns in a lazy
        :class:`~repro.stream.columns.ItemColumnView` — value-identical
        ``Item`` objects, materialized transiently — so every backend
        stays correct; backends with a native bulk path (the
        sliding-window sampler) override it.
        """
        from ..stream.columns import ItemColumnView

        self.observe_items(ItemColumnView(idents, weights))


class _SlidingWindowBackedQuery(CentralizedQuery):
    def __init__(
        self,
        query: SlidingWindowQuery,
        sampler: SlidingWindowWeightedSWOR,
        confidence: float,
    ) -> None:
        super().__init__(query)
        self.sampler = sampler
        self.confidence = confidence

    def observe_items(self, items: Sequence[Item]) -> None:
        insert = self.sampler.insert
        for item in items:
            insert(item)

    def observe_columns(self, idents, weights, timestamps=None) -> None:
        """Native columnar path — bit-identical draws to
        :meth:`observe_items` at any chunking (see
        :meth:`repro.extensions.SlidingWindowWeightedSWOR.insert_columns`),
        without materializing the chunk's ``Item`` objects."""
        self.sampler.insert_columns(idents, weights, timestamps)

    def answer(self) -> Estimate:
        window = min(self.query.window, max(self.sampler.items_seen, 1))
        return estimators.subset_sum(
            self.sampler.sample_with_keys(window),
            self.sampler.sample_size,
            self.query.predicate,
            self.confidence,
        )


def compile_query(
    query: Query,
    num_sites: int,
    root_seed: Optional[int],
    confidence: float = 0.95,
) -> CompiledQuery:
    """Build the protocol instance that will answer ``query``.

    All network-backed protocols are constructed with the *reference*
    engine selection left untouched — the driver, not the protocol
    facade, decides how batches flow.
    """
    seed = query_seed(root_seed, query.name)
    if isinstance(
        query,
        (SubsetSumQuery, MeanWeightQuery, FrequencyQuery, GroupByQuery, QuantileQuery),
    ):
        protocol = DistributedWeightedSWOR(
            SworConfig(num_sites=num_sites, sample_size=query.sample_size),
            seed=seed,
        )
        return _SworBackedQuery(query, protocol, confidence)
    if isinstance(query, HeavyHittersQuery):
        tracker = ResidualHeavyHitterTracker(
            num_sites,
            query.eps,
            delta=query.delta,
            seed=seed,
            sample_size_override=query.sample_size_override,
        )
        return _HeavyHittersBackedQuery(query, tracker)
    if isinstance(query, CountQuery):
        protocol = DistributedUnweightedSWOR(
            num_sites, query.sample_size, seed=seed
        )
        return _UnweightedBackedQuery(query, protocol, confidence)
    if isinstance(query, WeightedMeanQuery):
        protocol = DistributedWeightedSWR(
            num_sites, query.sample_size, seed=seed
        )
        return _SwrBackedQuery(query, protocol, confidence)
    if isinstance(query, TotalWeightQuery):
        tracker = L1Tracker(
            num_sites,
            query.eps,
            delta=query.delta,
            seed=seed,
            sample_size_override=query.sample_size_override,
            duplication_override=query.duplication_override,
        )
        return _L1BackedQuery(query, tracker)
    if isinstance(query, SlidingWindowQuery):
        sampler = SlidingWindowWeightedSWOR(
            query.sample_size,
            RandomSource(seed).substream("sliding-window"),
            horizon=query.window,
        )
        return _SlidingWindowBackedQuery(query, sampler, confidence)
    raise ConfigurationError(f"no backend for query type {type(query).__name__}")

"""Horvitz–Thompson estimators over live weighted-SWOR samples.

The coordinator's sample (:meth:`repro.core.protocol.DistributedWeightedSWOR.sample_with_keys`)
is a weighted SWOR realized through precision-sampling keys
``v_i = w_i / Exp(1)`` — equivalently a bottom-``s`` sketch with
exponentially distributed ranks ``t_i / w_i``.  Conditioning on the
``s``-th largest key ``τ`` (the classic priority-sampling/bottom-k
argument of Duffield–Lund–Thorup and Cohen–Kaplan), the remaining
``s-1`` sampled items are included independently with probability

    ``p_i = P(v_i > τ) = 1 - exp(-w_i / τ)``,

so for any per-item value ``f_i`` the Horvitz–Thompson sum
``Σ_{sampled} f_i / p_i`` is an unbiased estimate of ``Σ_stream f_i``,
with the unbiased variance estimate ``Σ f_i² (1-p_i) / p_i²``.  Every
estimator here returns an :class:`Estimate` carrying the point value
*and* that variance/confidence-interval object.

Three key regimes:

* **exact** — the sample holds the whole stream (fewer than ``s``
  distinct arrivals so far): estimates are exact, zero variance;
* **weighted** — exponential-key samples from the Theorem 3 protocol
  (also the sliding-window sampler, whose keys follow the same law);
* **uniform** — uniform-key samples from the *unweighted* baseline
  protocol, where the bottom-``s`` conditioning gives ``p_i = τ``
  (:func:`count_from_uniform_sample`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..common.errors import ConfigurationError
from ..stream.item import Item

__all__ = [
    "Estimate",
    "inclusion_probability",
    "ht_pairs",
    "subset_sum",
    "total_weight_estimate",
    "subset_count",
    "mean_weight",
    "frequency",
    "group_by_sum",
    "weighted_quantile",
    "count_from_uniform_sample",
    "swr_mean",
]

#: ``(item, key)`` pairs in decreasing key order, as returned by
#: ``sample_with_keys()``.
Entries = Sequence[Tuple[Item, float]]

_NORMAL = NormalDist()


def _z(confidence: float) -> float:
    """Two-sided normal quantile for a confidence level in (0, 1)."""
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0,1), got {confidence}"
        )
    return _NORMAL.inv_cdf(0.5 + confidence / 2.0)


@dataclass(frozen=True)
class Estimate:
    """A point estimate with its uncertainty.

    Attributes
    ----------
    value:
        The point estimate.
    variance:
        Estimated variance of ``value`` (``None`` when the method only
        yields an interval directly, e.g. quantile rank inversion).
    ci_low / ci_high:
        Confidence interval at ``confidence``.
    confidence:
        Nominal coverage of ``(ci_low, ci_high)``.
    n_used:
        Number of sampled entries the estimate is built from.
    exact:
        True when the sample held every stream item, making the
        estimate exact (zero-width interval).
    method:
        Short tag of the estimator ("ht", "ratio", "rank-inversion",
        "clt", "exact").
    """

    value: float
    variance: Optional[float]
    ci_low: float
    ci_high: float
    confidence: float = 0.95
    n_used: int = 0
    exact: bool = False
    method: str = "ht"

    @property
    def std_error(self) -> float:
        """Standard error (0.0 when variance is unknown or exact)."""
        if not self.variance or self.variance <= 0.0:
            return 0.0
        return math.sqrt(self.variance)

    @property
    def ci_width(self) -> float:
        return self.ci_high - self.ci_low

    def covers(self, truth: float) -> bool:
        """Whether the interval contains ``truth``."""
        return self.ci_low <= truth <= self.ci_high

    def rel_error(self, truth: float) -> float:
        """``|value - truth| / |truth|`` (absolute error when truth=0)."""
        if truth == 0.0:
            return abs(self.value)
        return abs(self.value - truth) / abs(truth)

    def __format__(self, spec: str) -> str:
        spec = spec or ".4g"
        return (
            f"{self.value:{spec}} "
            f"[{self.ci_low:{spec}}, {self.ci_high:{spec}}]"
        )


def _normal_estimate(
    value: float,
    variance: float,
    confidence: float,
    n_used: int,
    method: str,
) -> Estimate:
    variance = max(0.0, variance)
    half = _z(confidence) * math.sqrt(variance)
    return Estimate(
        value=value,
        variance=variance,
        ci_low=value - half,
        ci_high=value + half,
        confidence=confidence,
        n_used=n_used,
        method=method,
    )


def _exact_estimate(value: float, confidence: float, n_used: int) -> Estimate:
    return Estimate(
        value=value,
        variance=0.0,
        ci_low=value,
        ci_high=value,
        confidence=confidence,
        n_used=n_used,
        exact=True,
        method="exact",
    )


def inclusion_probability(weight: float, tau: float) -> float:
    """``P(w/Exp(1) > τ)`` — the conditional inclusion probability."""
    if tau <= 0.0:
        return 1.0
    return max(-math.expm1(-weight / tau), 5e-324)


def ht_pairs(
    entries: Entries, sample_size: int
) -> Tuple[List[Tuple[Item, float]], bool]:
    """``(item, p_i)`` pairs usable for HT estimation, plus exactness.

    When the sample holds the whole stream (fewer than ``sample_size``
    entries), every item is included with probability 1 and estimates
    built on the pairs are exact.  Otherwise the smallest sampled key is
    the threshold ``τ``; its item is *excluded* (it is the conditioning
    variable) and each remaining item gets ``p_i = 1 - e^{-w_i/τ}``.
    """
    if sample_size <= 0:
        raise ConfigurationError(
            f"sample_size must be positive, got {sample_size}"
        )
    entries = list(entries)
    if len(entries) < sample_size:
        return [(item, 1.0) for item, _ in entries], True
    tau = entries[sample_size - 1][1]
    return [
        (item, inclusion_probability(item.weight, tau))
        for item, _ in entries[: sample_size - 1]
    ], False


def _ht_moments(
    pairs: Sequence[Tuple[Item, float]],
    f: Callable[[Item], float],
) -> Tuple[float, float, int]:
    """HT total ``Σ f_i/p_i``, its variance estimate, and #contributors."""
    total = 0.0
    var = 0.0
    used = 0
    for item, p in pairs:
        fi = f(item)
        if fi == 0.0:
            continue
        total += fi / p
        var += fi * fi * (1.0 - p) / (p * p)
        used += 1
    return total, var, used


def subset_sum(
    entries: Entries,
    sample_size: int,
    predicate: Optional[Callable[[Item], bool]] = None,
    confidence: float = 0.95,
) -> Estimate:
    """Estimate ``Σ w_i`` over stream items satisfying ``predicate``.

    Unbiased (Horvitz–Thompson with conditional inclusion
    probabilities); ``predicate=None`` estimates the stream's total
    weight ``W``.
    """
    pairs, exact = ht_pairs(entries, sample_size)
    f = (
        (lambda item: item.weight)
        if predicate is None
        else (lambda item: item.weight if predicate(item) else 0.0)
    )
    total, var, used = _ht_moments(pairs, f)
    if exact:
        return _exact_estimate(total, confidence, used)
    return _normal_estimate(total, var, confidence, used, "ht")


def total_weight_estimate(
    entries: Entries, sample_size: int, confidence: float = 0.95
) -> Estimate:
    """Estimate the stream's total weight ``W`` from the sample alone."""
    return subset_sum(entries, sample_size, None, confidence)


def subset_count(
    entries: Entries,
    sample_size: int,
    predicate: Optional[Callable[[Item], bool]] = None,
    confidence: float = 0.95,
) -> Estimate:
    """Estimate the *number* of stream items satisfying ``predicate``."""
    pairs, exact = ht_pairs(entries, sample_size)
    f = (
        (lambda item: 1.0)
        if predicate is None
        else (lambda item: 1.0 if predicate(item) else 0.0)
    )
    total, var, used = _ht_moments(pairs, f)
    if exact:
        return _exact_estimate(total, confidence, used)
    return _normal_estimate(total, var, confidence, used, "ht")


def _ratio_estimate(
    pairs: Sequence[Tuple[Item, float]],
    exact: bool,
    num: Callable[[Item], float],
    den: Callable[[Item], float],
    confidence: float,
    if_empty: float = 0.0,
) -> Estimate:
    """Delta-method ratio ``Σnum/p / Σden/p`` with covariance terms."""
    y = n = var_y = var_n = cov = 0.0
    used = 0
    for item, p in pairs:
        fi, gi = num(item), den(item)
        if fi == 0.0 and gi == 0.0:
            continue
        q = (1.0 - p) / (p * p)
        y += fi / p
        n += gi / p
        var_y += fi * fi * q
        var_n += gi * gi * q
        cov += fi * gi * q
        used += 1
    if n == 0.0:
        return _exact_estimate(if_empty, confidence, 0) if exact else Estimate(
            value=if_empty,
            variance=None,
            ci_low=if_empty,
            ci_high=if_empty,
            confidence=confidence,
            n_used=0,
            method="ratio",
        )
    ratio = y / n
    if exact:
        return _exact_estimate(ratio, confidence, used)
    var = (var_y - 2.0 * ratio * cov + ratio * ratio * var_n) / (n * n)
    return _normal_estimate(ratio, var, confidence, used, "ratio")


def mean_weight(
    entries: Entries,
    sample_size: int,
    predicate: Optional[Callable[[Item], bool]] = None,
    confidence: float = 0.95,
) -> Estimate:
    """Estimate the mean weight of items satisfying ``predicate``.

    Ratio of two HT estimates (sum / count) with a delta-method
    variance — consistent, asymptotically unbiased.
    """
    pairs, exact = ht_pairs(entries, sample_size)
    match = (lambda item: True) if predicate is None else predicate
    return _ratio_estimate(
        pairs,
        exact,
        lambda item: item.weight if match(item) else 0.0,
        lambda item: 1.0 if match(item) else 0.0,
        confidence,
    )


def frequency(
    entries: Entries,
    sample_size: int,
    ident: int,
    relative: bool = False,
    confidence: float = 0.95,
) -> Estimate:
    """Estimate the total weight carried by identifier ``ident``.

    ``relative=True`` instead estimates its *share* of the stream's
    total weight (a ratio estimate in [0, 1] — the weighted frequency).
    """
    if not relative:
        return subset_sum(
            entries, sample_size, lambda item: item.ident == ident, confidence
        )
    pairs, exact = ht_pairs(entries, sample_size)
    return _ratio_estimate(
        pairs,
        exact,
        lambda item: item.weight if item.ident == ident else 0.0,
        lambda item: item.weight,
        confidence,
    )


def group_by_sum(
    entries: Entries,
    sample_size: int,
    key: Callable[[Item], object],
    confidence: float = 0.95,
) -> Dict[object, Estimate]:
    """Per-group subset-sum estimates in one pass over the sample.

    Groups absent from the sample are absent from the result (their
    estimate is implicitly 0, with no variance information).
    """
    pairs, exact = ht_pairs(entries, sample_size)
    totals: Dict[object, float] = {}
    variances: Dict[object, float] = {}
    counts: Dict[object, int] = {}
    for item, p in pairs:
        g = key(item)
        totals[g] = totals.get(g, 0.0) + item.weight / p
        variances[g] = (
            variances.get(g, 0.0)
            + item.weight * item.weight * (1.0 - p) / (p * p)
        )
        counts[g] = counts.get(g, 0) + 1
    if exact:
        return {
            g: _exact_estimate(totals[g], confidence, counts[g])
            for g in totals
        }
    return {
        g: _normal_estimate(totals[g], variances[g], confidence, counts[g], "ht")
        for g in totals
    }


def weighted_quantile(
    entries: Entries,
    sample_size: int,
    q: float,
    value: Optional[Callable[[Item], float]] = None,
    confidence: float = 0.95,
) -> Estimate:
    """Estimate the ``q``-quantile of the weight distribution over
    ``value(item)`` (default: the item's weight itself).

    The sampled items, reweighted by ``1/p_i``, approximate the stream's
    weight measure; the point estimate inverts the weighted empirical
    CDF at ``q``.  The interval inverts it at ``q ± z·sqrt(q(1-q)/n_eff)``
    (rank inversion with the Kish effective sample size), which is
    distribution-free but approximate.
    """
    if not 0.0 < q < 1.0:
        raise ConfigurationError(f"quantile q must be in (0,1), got {q}")
    pairs, exact = ht_pairs(entries, sample_size)
    if not pairs:
        raise ConfigurationError("cannot estimate a quantile from an empty sample")
    val = value if value is not None else (lambda item: item.weight)
    ranked = sorted(
        ((val(item), item.weight / p) for item, p in pairs),
        key=lambda t: t[0],
    )
    total = sum(a for _, a in ranked)
    sum_sq = sum(a * a for _, a in ranked)
    n_eff = (total * total / sum_sq) if sum_sq > 0.0 else 1.0

    def invert(rank: float) -> float:
        target = min(max(rank, 0.0), 1.0) * total
        acc = 0.0
        for v, a in ranked:
            acc += a
            if acc >= target:
                return v
        return ranked[-1][0]

    point = invert(q)
    if exact:
        return _exact_estimate(point, confidence, len(ranked))
    spread = _z(confidence) * math.sqrt(q * (1.0 - q) / max(n_eff, 1.0))
    return Estimate(
        value=point,
        variance=None,
        ci_low=invert(q - spread),
        ci_high=invert(q + spread),
        confidence=confidence,
        n_used=len(ranked),
        method="rank-inversion",
    )


def count_from_uniform_sample(
    entries: Entries,
    sample_size: int,
    predicate: Optional[Callable[[Item], bool]] = None,
    confidence: float = 0.95,
) -> Estimate:
    """Item-count estimate from a *uniform-key* (unweighted SWOR) sample.

    ``entries`` are ``(item, key)`` pairs in **increasing** key order as
    produced by the unweighted baseline protocol (bottom-``s`` uniform
    keys).  Conditioned on the ``s``-th smallest key ``τ``, the other
    ``s-1`` sampled items are included independently with ``p_i = τ``,
    so ``Σ 1/τ`` over matching items estimates the stream count —
    the classic ``(s-1)/τ`` distinct-sampling estimator when
    ``predicate`` is ``None``.
    """
    if sample_size <= 0:
        raise ConfigurationError(
            f"sample_size must be positive, got {sample_size}"
        )
    entries = list(entries)
    if len(entries) < sample_size:
        n = sum(
            1 for item, _ in entries if predicate is None or predicate(item)
        )
        return _exact_estimate(float(n), confidence, n)
    tau = entries[sample_size - 1][1]
    matches = sum(
        1
        for item, _ in entries[: sample_size - 1]
        if predicate is None or predicate(item)
    )
    total = matches / tau
    var = matches * (1.0 - tau) / (tau * tau)
    return _normal_estimate(total, var, confidence, matches, "ht")


def swr_mean(
    sample: Sequence[Item],
    value: Optional[Callable[[Item], float]] = None,
    confidence: float = 0.95,
) -> Estimate:
    """Weight-distribution mean of ``value`` from an SWR sample.

    Each slot of a weighted SWR sample is an independent draw of the
    weight distribution, so the plain sample mean of ``value(item)`` is
    unbiased for ``Σ w_i·value_i / W``, with a CLT interval.
    """
    if not sample:
        raise ConfigurationError("cannot estimate a mean from an empty sample")
    val = value if value is not None else (lambda item: item.weight)
    xs = [val(item) for item in sample]
    n = len(xs)
    mean = sum(xs) / n
    if n == 1:
        return Estimate(
            value=mean,
            variance=None,
            ci_low=mean,
            ci_high=mean,
            confidence=confidence,
            n_used=1,
            method="clt",
        )
    var = sum((x - mean) ** 2 for x in xs) / (n - 1) / n
    return _normal_estimate(mean, var, confidence, n, "clt")

"""Repo-local developer tooling (not shipped with the package).

Currently: :mod:`tools.reprolint`, the determinism & invariant
analyzer run by the ``lint`` CI job.
"""

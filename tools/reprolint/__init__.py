"""reprolint — the repo's determinism & invariant analyzer.

A self-contained AST lint pass (stdlib only) enforcing the contracts
every fast path's bit-parity gate depends on:

* R001 rng-discipline · R002 kernel-purity · R003 snapshot-completeness
* R004 clock-discipline · R005 metric-name-drift · R006 order-hazards

Run ``python -m tools.reprolint`` (see :mod:`tools.reprolint.cli`),
suppress with ``# reprolint: disable=RXXX <justification>``, and see
:mod:`tools.reprolint.rules` for what each rule pins and why.
"""

from .baseline import apply_baseline, load_baseline, render_baseline
from .engine import (
    RULE_REGISTRY,
    AnalysisResult,
    Finding,
    Rule,
    SourceFile,
    all_rules,
    analyze_paths,
    collect_files,
    find_repo_root,
    register_rule,
)

__all__ = [
    "AnalysisResult",
    "Finding",
    "Rule",
    "RULE_REGISTRY",
    "SourceFile",
    "all_rules",
    "analyze_paths",
    "apply_baseline",
    "collect_files",
    "find_repo_root",
    "load_baseline",
    "register_rule",
    "render_baseline",
]

"""reprolint engine — file walking, suppressions, rule dispatch.

The analyzer is deliberately self-contained: stdlib :mod:`ast` plus
:mod:`json`, nothing else, so the lint CI job needs no extra installs
and the tool can never drift out of sync with a third-party framework.

Pipeline per file:

1. parse the source into an AST (a syntax error is itself a finding);
2. scan comments for inline suppressions
   (``# reprolint: disable=R001,R004 reason``) and file-wide ones
   (``# reprolint: disable-file=R005 reason``);
3. run every registered rule whose :meth:`Rule.applies_to` accepts the
   file's repo-relative path;
4. drop findings covered by a suppression (a suppression *must* carry a
   justification — a bare one is reported as ``R000``) or by the
   committed baseline (see :mod:`tools.reprolint.baseline`).

Findings carry the stripped source line (``snippet``) so baseline
matching survives unrelated line-number drift.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "RULE_REGISTRY",
    "register_rule",
    "all_rules",
    "collect_files",
    "find_repo_root",
    "analyze_paths",
]

#: Meta-rule id for analyzer-level problems: syntax errors, malformed
#: or justification-free suppressions.  Not suppressible.
META_RULE = "R000"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*"
    r"(?P<rules>R\d{3}(?:\s*,\s*R\d{3})*)"
    r"(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int  # 1-based
    col: int  # 0-based
    message: str
    snippet: str  # stripped source line (baseline key material)

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


@dataclass
class Suppression:
    """One parsed ``# reprolint: disable[-file]=...`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    file_wide: bool


class SourceFile:
    """A parsed source file plus its suppression table."""

    def __init__(
        self, path: Path, rel: str, text: str, root: Optional[Path] = None
    ) -> None:
        self.path = path
        self.rel = rel
        self.root = root if root is not None else path.parent
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: Optional[ast.AST] = None
        self.parse_error: Optional[Finding] = None
        self.suppressions: List[Suppression] = []
        self.meta_findings: List[Finding] = []
        try:
            self.tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            self.parse_error = Finding(
                rule=META_RULE,
                path=rel,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
                snippet=self.line_text(exc.lineno or 1),
            )
        self._scan_suppressions()

    # -- helpers for rules -------------------------------------------

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.rel,
            line=line,
            col=col,
            message=message,
            snippet=self.line_text(line),
        )

    # -- suppressions ------------------------------------------------

    def _scan_suppressions(self) -> None:
        # Tokenize so that docstrings/strings *mentioning* the
        # suppression syntax are not mistaken for (malformed) comments.
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.text).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return  # unparseable — already reported as a parse error
        for token in tokens:
            if token.type != tokenize.COMMENT or "reprolint" not in token.string:
                continue
            lineno, raw = token.start[0], token.string
            match = _SUPPRESS_RE.search(raw)
            if match is None:
                # A comment that mentions the tool but does not parse is
                # a typo waiting to silently un-suppress something.
                if re.search(r"#\s*reprolint\s*:", raw):
                    self.meta_findings.append(
                        Finding(
                            rule=META_RULE,
                            path=self.rel,
                            line=lineno,
                            col=0,
                            message="malformed reprolint comment "
                            "(expected '# reprolint: disable=RXXX[,RYYY] reason')",
                            snippet=raw.strip(),
                        )
                    )
                continue
            rules = tuple(
                r.strip() for r in match.group("rules").split(",") if r.strip()
            )
            reason = match.group("reason").strip()
            if not reason:
                self.meta_findings.append(
                    Finding(
                        rule=META_RULE,
                        path=self.rel,
                        line=lineno,
                        col=0,
                        message=f"suppression of {', '.join(rules)} has no "
                        "justification — add one after the rule list",
                        snippet=raw.strip(),
                    )
                )
                continue
            self.suppressions.append(
                Suppression(
                    line=lineno,
                    rules=rules,
                    reason=reason,
                    file_wide=match.group(1) == "disable-file",
                )
            )

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule == META_RULE:
            return False
        for sup in self.suppressions:
            if finding.rule not in sup.rules:
                continue
            if sup.file_wide:
                return True
            # Same line, or a dedicated comment on the line above.
            if sup.line == finding.line or sup.line == finding.line - 1:
                return True
        return False


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``id``/``name``/``summary``, override
    :meth:`applies_to` to scope themselves by repo-relative path, and
    implement :meth:`check` yielding :class:`Finding` objects.
    """

    id: str = ""
    name: str = ""
    summary: str = ""

    def applies_to(self, rel: str) -> bool:  # pragma: no cover - overridden
        return True

    def check(self, src: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError


RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id or cls.id in RULE_REGISTRY:
        raise ValueError(f"rule id missing or duplicate: {cls.id!r}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    # Import for side effects: rule classes self-register on import.
    from . import rules as _rules  # noqa: F401

    return [RULE_REGISTRY[rid]() for rid in sorted(RULE_REGISTRY)]


# -- file walking -----------------------------------------------------

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "node_modules"}


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                p
                for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor holding a ``pyproject.toml`` (else ``start``).

    The root anchors repo-relative paths (rule scoping, baseline keys)
    and locates the golden metric-name list for R005.
    """
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start.resolve() if start.is_dir() else start.resolve().parent


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced, pre-baseline."""

    root: Path
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    checked_files: int = 0


def analyze_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> AnalysisResult:
    """Run the (optionally filtered) rule set over ``paths``."""
    if root is None:
        root = find_repo_root(paths[0] if paths else Path.cwd())
    rules = all_rules()
    if rule_ids:
        unknown = sorted(set(rule_ids) - {r.id for r in rules})
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(RULE_REGISTRY))})"
            )
        rules = [r for r in rules if r.id in set(rule_ids)]
    result = AnalysisResult(root=root)
    for path in collect_files(paths):
        try:
            rel = path.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:  # pragma: no cover - unreadable file
            result.findings.append(
                Finding(META_RULE, rel, 1, 0, f"cannot read file: {exc}", "")
            )
            continue
        src = SourceFile(path, rel, text, root=root)
        result.checked_files += 1
        result.findings.extend(src.meta_findings)
        if src.parse_error is not None:
            result.findings.append(src.parse_error)
            continue
        for rule in rules:
            if not rule.applies_to(rel):
                continue
            for finding in rule.check(src):
                if src.is_suppressed(finding):
                    result.suppressed += 1
                else:
                    result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result

"""Command-line front end: ``python -m tools.reprolint``.

Usage::

    python -m tools.reprolint [--format text|json] [--rule R00X ...]
                              [--baseline PATH | --no-baseline]
                              [--write-baseline] [--list-rules] [paths...]

Paths default to ``src/repro tests tools`` under the repo root.  Exit
status: 0 when no non-baselined findings, 1 when there are findings,
2 on usage errors (unknown rule, malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import apply_baseline, load_baseline, render_baseline
from .engine import all_rules, analyze_paths, find_repo_root

__all__ = ["main"]

#: Repo-root-relative default targets when no paths are given.
DEFAULT_TARGETS = ("src/repro", "tests", "tools")

#: Repo-root-relative location of the committed baseline.
DEFAULT_BASELINE = "tools/reprolint/baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST-based determinism & invariant analyzer for this repo",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files/directories to analyze (default: {' '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="RXXX",
        help="restrict to the given rule id(s); repeatable",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help=f"baseline file (default: <repo-root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file to cover all current findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name:<24} {rule.summary}")
        return 0

    root = find_repo_root(args.paths[0] if args.paths else Path.cwd())
    paths: List[Path] = list(args.paths) or [root / t for t in DEFAULT_TARGETS]
    paths = [p for p in paths if p.exists()]
    if not paths:
        print("reprolint: no existing paths to analyze", file=sys.stderr)
        return 2

    try:
        result = analyze_paths(paths, root=root, rule_ids=args.rule)
    except ValueError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or (root / DEFAULT_BASELINE)
    if args.write_baseline:
        baseline_path.write_text(
            render_baseline(result.findings), encoding="utf-8"
        )
        print(
            f"reprolint: wrote {len(result.findings)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    baselined = 0
    findings = result.findings
    if not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return 2
        findings, baselined = apply_baseline(findings, baseline)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "root": str(root),
                    "checked_files": result.checked_files,
                    "suppressed": result.suppressed,
                    "baselined": baselined,
                    "findings": [f.to_json() for f in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format_text())
        summary = (
            f"reprolint: {len(findings)} finding(s) in "
            f"{result.checked_files} file(s)"
        )
        extras = []
        if result.suppressed:
            extras.append(f"{result.suppressed} suppressed")
        if baselined:
            extras.append(f"{baselined} baselined")
        if extras:
            summary += f" ({', '.join(extras)})"
        print(summary, file=sys.stderr)

    return 1 if findings else 0

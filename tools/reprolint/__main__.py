"""Entry point for ``python -m tools.reprolint``."""

import sys

from .cli import main

sys.exit(main())

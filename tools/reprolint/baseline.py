"""Baseline handling — grandfathered findings that do not fail CI.

The baseline is a committed JSON file keyed on
``(rule, path, snippet)`` with an occurrence count — deliberately
**not** on line numbers, so unrelated edits above a grandfathered
finding do not resurrect it.  Consequences of the keying:

* moving a flagged line within its file keeps it baselined;
* editing the flagged line (even whitespace-insignificantly) drops the
  match and the finding fails CI — touching grandfathered code means
  fixing it, which is the ratchet the baseline exists to provide;
* adding a *second* identical offence on an identical line in the same
  file exceeds the recorded count and fails CI.

The repo ships with an **empty** baseline for R001/R002/R004 (the
sweep fixed everything); keep it that way.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from .engine import Finding

__all__ = ["BASELINE_VERSION", "load_baseline", "apply_baseline", "render_baseline"]

BASELINE_VERSION = 1

BaselineKey = Tuple[str, str, str]  # (rule, path, snippet)


def load_baseline(path: Path) -> "Counter[BaselineKey]":
    """Parse a baseline file into ``{(rule, path, snippet): count}``.

    A missing file is an empty baseline; a malformed one raises
    ``ValueError`` (CI should fail loudly, not silently un-baseline).
    """
    if not path.is_file():
        return Counter()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has unsupported version "
            f"{data.get('version') if isinstance(data, dict) else data!r} "
            f"(expected {BASELINE_VERSION})"
        )
    out: "Counter[BaselineKey]" = Counter()
    for entry in data.get("entries", []):
        try:
            key = (entry["rule"], entry["path"], entry["snippet"])
            count = int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed baseline entry in {path}: {entry!r}") from exc
        out[key] += count
    return out


def apply_baseline(
    findings: List[Finding], baseline: "Counter[BaselineKey]"
) -> Tuple[List[Finding], int]:
    """Split findings into (new, baselined-count).

    Matching consumes baseline budget per key, so N grandfathered
    occurrences cover at most N live ones.
    """
    budget = Counter(baseline)
    fresh: List[Finding] = []
    matched = 0
    for finding in findings:
        key: BaselineKey = (finding.rule, finding.path, finding.snippet)
        if budget[key] > 0:
            budget[key] -= 1
            matched += 1
        else:
            fresh.append(finding)
    return fresh, matched


def render_baseline(findings: List[Finding]) -> str:
    """Serialize current findings as baseline-file JSON (for
    ``--write-baseline``)."""
    counts: "Counter[BaselineKey]" = Counter(
        (f.rule, f.path, f.snippet) for f in findings
    )
    entries: List[Dict[str, object]] = [
        {"rule": rule, "path": path, "snippet": snippet, "count": count}
        for (rule, path, snippet), count in sorted(counts.items())
    ]
    return json.dumps(
        {"version": BASELINE_VERSION, "entries": entries}, indent=2
    ) + "\n"

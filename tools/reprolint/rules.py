"""The reprolint rule set — the repo's correctness contracts, statically.

Every fast path in this reproduction is gated on **bit-identical
samples and message counters** versus the slower engine it replaces.
That guarantee rests on coding conventions that are easy to break in
review; each rule here pins one of them:

========  ======================  =============================================
Rule      Name                    Invariant
========  ======================  =============================================
R001      rng-discipline          randomness only via seeded instances
                                  (``random.Random``, numpy ``Generator``,
                                  :mod:`repro.common.rng`) — never global
                                  module state, which any import can perturb
R002      kernel-purity           ``repro.kernels`` backends are pure column
                                  transforms: no RNG, no clocks, no I/O, no
                                  module-global mutation (the bit-identical
                                  backend seam)
R003      snapshot-completeness   every ``snapshot_state``/``restore_state``
                                  pair covers every mutable attribute, or
                                  names it in ``_SNAPSHOT_EXCLUDE`` (rollback
                                  parity for the sharded/pipelined engines)
R004      clock-discipline        wall clocks only in telemetry/driver layers
                                  (``obs/``, ``runtime/``, the CLI, the query
                                  driver) — never where a timestamp could leak
                                  into protocol behavior
R005      metric-name-drift       metric-name literals must be on the golden
                                  stability list in ``tests/test_obs.py``
R006      order-hazards           iterating an unordered ``set`` feeds program
                                  order — require ``sorted(...)`` (or a
                                  documented suppression)
========  ======================  =============================================

All rules are pure AST passes (stdlib only).  Suppress a finding inline
with ``# reprolint: disable=RXXX <why>`` — the justification is
mandatory and audited by the engine.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import Finding, Rule, SourceFile, register_rule

__all__ = [
    "RngDiscipline",
    "KernelPurity",
    "SnapshotCompleteness",
    "ClockDiscipline",
    "MetricNameDrift",
    "OrderHazards",
]


# ---------------------------------------------------------------------------
# shared AST utilities
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local-name resolution for imported modules and symbols."""

    def __init__(self, tree: ast.AST) -> None:
        #: local alias -> full module path ("np" -> "numpy").
        self.modules: Dict[str, str] = {}
        #: local name -> (module, original) for ``from m import x as y``.
        self.symbols: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname is None and "." in alias.name:
                        # ``import numpy.random`` binds ``numpy``.
                        self.modules[alias.name.split(".")[0]] = alias.name.split(
                            "."
                        )[0]
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.symbols[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
                    # ``from numpy import random`` binds a module too.
                    self.modules.setdefault(
                        alias.asname or alias.name,
                        f"{node.module}.{alias.name}",
                    )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted path with the leading alias expanded,
        or ``None`` when the chain does not start at an import."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.modules:
            base = self.modules[head]
            return f"{base}.{rest}" if rest else base
        if head in self.symbols:
            module, original = self.symbols[head]
            full = f"{module}.{original}"
            return f"{full}.{rest}" if rest else full
        return None


def _under(rel: str, *prefixes: str) -> bool:
    return any(rel == p or rel.startswith(p.rstrip("/") + "/") for p in prefixes)


# ---------------------------------------------------------------------------
# R001 rng-discipline
# ---------------------------------------------------------------------------

#: ``random`` module attributes that do NOT touch the hidden global
#: generator: instantiable classes only.
_RANDOM_ALLOWED = {"Random", "SystemRandom"}

#: ``numpy.random`` attributes that are explicit-instance constructors
#: (the modern Generator API) rather than legacy global-state functions.
_NP_RANDOM_ALLOWED = {
    "Generator",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "SeedSequence",
    "RandomState",
    "default_rng",
}


@register_rule
class RngDiscipline(Rule):
    """R001: no global-state randomness, anywhere.

    Bit-identical replay across engines, workers, and backends requires
    every variate to come from an owned, seeded stream
    (``random.Random``, numpy ``Generator``/``PCG64``,
    ``repro.common.rng`` helpers).  ``random.random()`` and friends
    draw from interpreter-global state that any library import or
    unrelated code path can silently advance; ``np.random.seed`` +
    module-level draws have the same failure mode plus cross-thread
    sharing.  ``default_rng()`` *without* a seed is flagged too — it is
    nondeterministic by construction.
    """

    id = "R001"
    name = "rng-discipline"
    summary = "global random.* / np.random.* state is forbidden; use seeded instances"

    def applies_to(self, rel: str) -> bool:
        return rel.endswith(".py")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        imports = ImportMap(src.tree)
        assert src.tree is not None
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and not node.level:
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in _RANDOM_ALLOWED:
                            yield src.finding(
                                self.id,
                                node,
                                f"'from random import {alias.name}' pulls a "
                                "global-state function; use a seeded "
                                "random.Random instance",
                            )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _NP_RANDOM_ALLOWED:
                            yield src.finding(
                                self.id,
                                node,
                                f"'from numpy.random import {alias.name}' pulls "
                                "a legacy global-state function; use "
                                "numpy.random.Generator",
                            )
            elif isinstance(node, ast.Attribute):
                full = imports.resolve(node)
                if full is None:
                    continue
                if full.startswith("random."):
                    attr = full.split(".", 1)[1]
                    if "." not in attr and attr not in _RANDOM_ALLOWED:
                        yield src.finding(
                            self.id,
                            node,
                            f"random.{attr} draws from the interpreter-global "
                            "RNG; use a seeded random.Random instance",
                        )
                elif full.startswith("numpy.random."):
                    attr = full.split("numpy.random.", 1)[1]
                    if "." not in attr and attr not in _NP_RANDOM_ALLOWED:
                        yield src.finding(
                            self.id,
                            node,
                            f"numpy.random.{attr} uses numpy's global RNG "
                            "state; use numpy.random.Generator(PCG64(seed))",
                        )
            elif isinstance(node, ast.Call):
                full = (
                    imports.resolve(node.func)
                    if isinstance(node.func, (ast.Attribute, ast.Name))
                    else None
                )
                if (
                    full == "numpy.random.default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    yield src.finding(
                        self.id,
                        node,
                        "default_rng() without a seed is nondeterministic; "
                        "pass an explicit seed",
                    )


# ---------------------------------------------------------------------------
# clock detection (shared by R002 and R004)
# ---------------------------------------------------------------------------

_CLOCK_FUNCS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "thread_time",
    "thread_time_ns",
}

_CLOCK_DOTTED = (
    {f"time.{f}" for f in _CLOCK_FUNCS}
    | {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _iter_clock_findings(
    rule: Rule, src: SourceFile, imports: ImportMap
) -> Iterator[Finding]:
    assert src.tree is not None
    for node in ast.walk(src.tree):
        if isinstance(node, ast.ImportFrom) and not node.level:
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _CLOCK_FUNCS:
                        yield src.finding(
                            rule.id,
                            node,
                            f"'from time import {alias.name}' imports a wall "
                            "clock into protocol code",
                        )
        elif isinstance(node, ast.Attribute):
            full = imports.resolve(node)
            if full in _CLOCK_DOTTED:
                yield src.finding(
                    rule.id,
                    node,
                    f"{full} reads a clock; timestamps must never influence "
                    "protocol behavior (keep timing in obs/ or runtime/)",
                )


# ---------------------------------------------------------------------------
# R002 kernel-purity
# ---------------------------------------------------------------------------

_IO_BUILTINS = {"open", "print", "input"}
_IO_ATTRS = {"write_text", "write_bytes", "read_text", "read_bytes"}
_IO_MODULES = {"subprocess", "socket"}


@register_rule
class KernelPurity(Rule):
    """R002: kernel backends are pure column transforms.

    The kernel seam's contract (PR 8) is that every backend computes
    the same outputs from the same columns, so backends can be swapped
    per-process, per-run, and per-worker without perturbing a single
    sample or counter.  Anything ambient — RNG, clocks, I/O, mutable
    module globals — is a channel through which two backends (or two
    runs) could diverge, so none of it is allowed in
    ``src/repro/kernels/``.
    """

    id = "R002"
    name = "kernel-purity"
    summary = "src/repro/kernels/ must not draw RNG, read clocks, do I/O, or mutate globals"

    def applies_to(self, rel: str) -> bool:
        return _under(rel, "src/repro/kernels")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        imports = ImportMap(src.tree)
        assert src.tree is not None
        yield from _iter_clock_findings(self, src, imports)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "random":
                        yield src.finding(
                            self.id, node, "kernels must not import random"
                        )
                    elif root in _IO_MODULES:
                        yield src.finding(
                            self.id, node, f"kernels must not import {root}"
                        )
            elif isinstance(node, ast.ImportFrom) and not node.level:
                root = (node.module or "").split(".")[0]
                if root == "random":
                    yield src.finding(
                        self.id, node, "kernels must not import from random"
                    )
                elif root in _IO_MODULES:
                    yield src.finding(
                        self.id, node, f"kernels must not import from {root}"
                    )
            elif isinstance(node, ast.Attribute):
                full = imports.resolve(node)
                if full is not None and full.startswith("numpy.random"):
                    yield src.finding(
                        self.id,
                        node,
                        "kernels must not touch numpy.random — all variates "
                        "are drawn by the protocol layer and passed in as "
                        "columns",
                    )
                elif node.attr in _IO_ATTRS:
                    yield src.finding(
                        self.id, node, f".{node.attr}() is file I/O; kernels are pure"
                    )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _IO_BUILTINS
                ):
                    yield src.finding(
                        self.id,
                        node,
                        f"{node.func.id}() is I/O; kernels are pure column "
                        "transforms",
                    )
            elif isinstance(node, ast.Global):
                yield src.finding(
                    self.id,
                    node,
                    f"mutating module globals ({', '.join(node.names)}) from a "
                    "kernel makes backend behavior order-dependent",
                )


# ---------------------------------------------------------------------------
# R003 snapshot-completeness
# ---------------------------------------------------------------------------

#: Method names whose self-attribute stores do NOT count as protocol
#: mutations (they define or rewind the state rather than evolving it).
_SNAPSHOT_EXEMPT_METHODS = {
    "__init__",
    "__getstate__",
    "__setstate__",
    "snapshot_state",
    "restore_state",
    "snapshot",
    "restore",
}

#: Container-method names treated as mutations of ``self.<attr>`` when
#: called as ``self.<attr>.<mutator>(...)``.
_MUTATOR_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}


def _self_attr(node: ast.AST, self_name: str) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _method_self_name(fn: ast.FunctionDef) -> Optional[str]:
    """The receiver name of an instance method, or ``None`` for
    static/class methods (whose first argument is not the instance)."""
    for decorator in fn.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id in (
            "staticmethod",
            "classmethod",
        ):
            return None
    args = fn.args.posonlyargs + fn.args.args
    return args[0].arg if args else None


def _returns_only_none(fn: ast.FunctionDef) -> bool:
    """True when every ``return`` returns ``None`` — the base-class
    "snapshots unsupported" default, which the rule must not treat as a
    real implementation."""
    returns = [n for n in ast.walk(fn) if isinstance(n, ast.Return)]
    return all(
        r.value is None
        or (isinstance(r.value, ast.Constant) and r.value.value is None)
        for r in returns
    )


def _exclude_names(cls: ast.ClassDef) -> Set[str]:
    """String constants of a class-level ``_SNAPSHOT_EXCLUDE``."""
    out: Set[str] = set()
    for stmt in cls.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(
            isinstance(t, ast.Name) and t.id == "_SNAPSHOT_EXCLUDE"
            for t in targets
        ):
            continue
        if isinstance(value, ast.Call) and value.args:
            value = value.args[0]
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    out.add(element.value)
    return out


@register_rule
class SnapshotCompleteness(Rule):
    """R003: snapshot/restore pairs must cover every mutable attribute.

    The sharded engine's rollback (PR 5) and the pipelined engine's
    rewind-and-refold (PR 6) assume ``restore_state(snapshot_state())``
    followed by the same inputs reproduces the same outputs **bit for
    bit**.  An attribute that protocol methods mutate but the pair does
    not restore silently survives a rollback — parity then breaks only
    on the rare replay paths, the worst kind of bug to chase.  Derived
    caches that rebuild themselves must be listed in a class-level
    ``_SNAPSHOT_EXCLUDE = ("attr", ...)`` so the exemption is explicit
    and reviewed.
    """

    id = "R003"
    name = "snapshot-completeness"
    summary = "snapshot_state/restore_state must cover every mutable attribute"

    def applies_to(self, rel: str) -> bool:
        return _under(rel, "src/repro")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        assert src.tree is not None
        for cls in ast.walk(src.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(src, cls)

    def _check_class(
        self, src: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)
        }
        if "snapshot_state" in methods:
            snap_name, rest_name = "snapshot_state", "restore_state"
        elif "snapshot" in methods and "restore" in methods:
            snap_name, rest_name = "snapshot", "restore"
        else:
            return
        snap = methods[snap_name]
        if _returns_only_none(snap):
            return  # the "unsupported" base-class default
        rest = methods.get(rest_name)
        if rest is None:
            yield src.finding(
                self.id,
                snap,
                f"class {cls.name} defines {snap_name}() without "
                f"{rest_name}() — snapshots must be restorable",
            )
            return
        excluded = _exclude_names(cls)
        mutated = self._mutated_attrs(methods)
        snap_mentions = self._mentioned_attrs(snap)
        rest_mentions = self._mentioned_attrs(rest)
        flagged: Set[str] = set()
        for attr in sorted(mutated - excluded):
            if attr not in rest_mentions:
                flagged.add(attr)
                yield src.finding(
                    self.id,
                    snap,
                    f"{cls.name}.{attr} is mutated by protocol methods but "
                    f"never restored by {rest_name}() — capture it, or list "
                    "it in _SNAPSHOT_EXCLUDE with a justifying comment",
                )
        for attr in sorted(snap_mentions - rest_mentions - excluded - flagged):
            yield src.finding(
                self.id,
                snap,
                f"{cls.name}.{attr} is captured by {snap_name}() but never "
                f"touched by {rest_name}() — restore it (or stop capturing "
                "it)",
            )

    @staticmethod
    def _mutated_attrs(methods: Dict[str, ast.FunctionDef]) -> Set[str]:
        mutated: Set[str] = set()
        for name, fn in methods.items():
            if name in _SNAPSHOT_EXEMPT_METHODS:
                continue
            self_name = _method_self_name(fn)
            if self_name is None:
                continue
            for node in ast.walk(fn):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        mutated.update(
                            SnapshotCompleteness._store_targets(
                                target, self_name
                            )
                        )
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        mutated.update(
                            SnapshotCompleteness._store_targets(
                                target, self_name
                            )
                        )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATOR_METHODS
                ):
                    attr = _self_attr(node.func.value, self_name)
                    if attr is not None:
                        mutated.add(attr)
        return mutated

    @staticmethod
    def _store_targets(target: ast.expr, self_name: str) -> Set[str]:
        """Attribute names written by one assignment/delete target."""
        out: Set[str] = set()
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                out.update(
                    SnapshotCompleteness._store_targets(element, self_name)
                )
            return out
        if isinstance(target, ast.Starred):
            return SnapshotCompleteness._store_targets(target.value, self_name)
        if isinstance(target, ast.Subscript):
            target = target.value
        attr = _self_attr(target, self_name)
        if attr is not None:
            out.add(attr)
        return out

    @staticmethod
    def _mentioned_attrs(fn: ast.FunctionDef) -> Set[str]:
        self_name = _method_self_name(fn)
        if self_name is None:
            return set()
        out: Set[str] = set()
        for node in ast.walk(fn):
            attr = _self_attr(node, self_name)
            if attr is not None:
                out.add(attr)
        return out


# ---------------------------------------------------------------------------
# R004 clock-discipline
# ---------------------------------------------------------------------------

#: Layers where wall clocks are legitimate: telemetry, engine drivers
#: (run timing for last_run_stats / spans), the CLI, and the query
#: driver's per-query fold timings.  ``kernels/`` is policed by the
#: stricter R002 instead.
_CLOCK_ALLOWED_PREFIXES = (
    "src/repro/obs",
    "src/repro/runtime",
    "src/repro/kernels",
)
_CLOCK_ALLOWED_FILES = {
    "src/repro/cli.py",
    "src/repro/__main__.py",
    "src/repro/query/driver.py",
}


@register_rule
class ClockDiscipline(Rule):
    """R004: wall clocks stay out of protocol code.

    A ``time.time()``/``perf_counter()`` result that reaches a sampling
    decision, a message payload, or an estimator breaks replay: two
    runs of the same seed would diverge, and the bit-parity gates that
    certify every fast path would chase phantom diffs.  Timing is
    telemetry, and telemetry lives in ``obs/``, the engine layer
    (``runtime/``), the CLI, and the query driver's fold timers — never
    in ``core/``, ``net/``, ``stream/``, the estimators, or protocol
    extensions.
    """

    id = "R004"
    name = "clock-discipline"
    summary = "wall clocks only in obs/, runtime/, the CLI, and the query driver"

    def applies_to(self, rel: str) -> bool:
        if not _under(rel, "src/repro"):
            return False
        if rel in _CLOCK_ALLOWED_FILES:
            return False
        return not _under(rel, *_CLOCK_ALLOWED_PREFIXES)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        yield from _iter_clock_findings(self, src, ImportMap(src.tree))


# ---------------------------------------------------------------------------
# R005 metric-name-drift
# ---------------------------------------------------------------------------

_METRIC_METHODS = {"counter", "gauge", "histogram"}


def _load_golden_names(root: Path) -> Optional[Set[str]]:
    """``GOLDEN_METRIC_NAMES`` from ``tests/test_obs.py`` (the single
    source of truth dashboards and the CI artifact diff rely on)."""
    golden_path = root / "tests" / "test_obs.py"
    try:
        tree = ast.parse(golden_path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "GOLDEN_METRIC_NAMES"
                for t in node.targets
            )
            and isinstance(node.value, (ast.List, ast.Tuple, ast.Set))
        ):
            return {
                e.value
                for e in node.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            }
    return None


@register_rule
class MetricNameDrift(Rule):
    """R005: metric names must be on the golden stability list.

    ``tests/test_obs.py`` pins the complete family-name surface
    (``GOLDEN_METRIC_NAMES``); dashboards and the nightly artifact diff
    key on those strings.  Registering a counter/gauge/histogram — or
    opening a ``registry.span`` whose derived ``repro_<name>_seconds``
    family — under a name that is not on the list is a silent breaking
    change.  The fix is to add the name to the golden list (and the
    README table) in the same commit, which forces the rename through
    review.
    """

    id = "R005"
    name = "metric-name-drift"
    summary = "metric-name literals must appear in tests/test_obs.py GOLDEN_METRIC_NAMES"

    def __init__(self) -> None:
        self._golden_cache: Dict[Path, Optional[Set[str]]] = {}

    def applies_to(self, rel: str) -> bool:
        return _under(rel, "src/repro")

    def _golden(self, root: Path) -> Optional[Set[str]]:
        if root not in self._golden_cache:
            self._golden_cache[root] = _load_golden_names(root)
        return self._golden_cache[root]

    def check(self, src: SourceFile) -> Iterator[Finding]:
        assert src.tree is not None
        golden: Optional[Set[str]] = None
        golden_loaded = False
        for node in ast.walk(src.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and (
                    node.func.attr in _METRIC_METHODS
                    or node.func.attr == "span"
                )
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            literal = node.args[0].value
            if node.func.attr == "span":
                metric = f"repro_{literal}_seconds"
            else:
                metric = literal
                if not metric.startswith("repro_"):
                    yield src.finding(
                        self.id,
                        node,
                        f"metric name {metric!r} lacks the repro_ namespace "
                        "prefix",
                    )
                    continue
            if not golden_loaded:
                golden = self._golden(src.root)
                golden_loaded = True
                if golden is None:
                    yield src.finding(
                        self.id,
                        node,
                        "cannot check metric names: GOLDEN_METRIC_NAMES not "
                        "found in tests/test_obs.py under the analysis root",
                    )
                    return
            assert golden is not None
            if metric not in golden:
                hint = (
                    f"span {literal!r} maps to family {metric!r}, which"
                    if node.func.attr == "span"
                    else f"metric {metric!r}"
                )
                yield src.finding(
                    self.id,
                    node,
                    f"{hint} is not on the golden stability list in "
                    "tests/test_obs.py — add it there (and to the README "
                    "table) in the same commit",
                )


# ---------------------------------------------------------------------------
# R006 order-hazards
# ---------------------------------------------------------------------------

_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate"}

#: Builtins whose result does not depend on argument order — a
#: comprehension feeding one of these directly is not a hazard.
_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted",
    "set",
    "frozenset",
    "sum",
    "max",
    "min",
    "any",
    "all",
    "len",
    "Counter",
    "dict",
}


def _is_set_construct(node: ast.AST) -> bool:
    """Whether an expression is *syntactically* an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _is_set_construct(func.value)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_construct(node.left) or _is_set_construct(node.right)
    return False


@register_rule
class OrderHazards(Rule):
    """R006: iterating an unordered set feeds program order.

    Sample merges, message emission, and pack construction are all
    order-sensitive: the engines' bit-parity contract fixes a single
    canonical order, and folding survivors in ``set`` iteration order
    would make runs hash-seed dependent.  Any ``for``/comprehension
    over a set expression — or materializing one via
    ``list``/``tuple``/``enumerate``/``join`` — must go through
    ``sorted(...)``; where insertion order is genuinely irrelevant,
    document it with a suppression.
    """

    id = "R006"
    name = "order-hazards"
    summary = "iteration over set()/set literals must go through sorted(...)"

    def applies_to(self, rel: str) -> bool:
        return _under(rel, "src/repro")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        assert src.tree is not None
        # Comprehensions passed straight into an order-insensitive
        # consumer (sorted(... for x in set(...)) etc.) are exempt.
        exempt: Set[int] = set()
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_INSENSITIVE_CONSUMERS
            ):
                for arg in node.args:
                    if isinstance(
                        arg,
                        (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
                    ):
                        exempt.add(id(arg))
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_construct(node.iter):
                    yield self._finding(src, node.iter, "for loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                if id(node) in exempt:
                    continue
                for gen in node.generators:
                    if _is_set_construct(gen.iter):
                        yield self._finding(src, gen.iter, "comprehension")
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_WRAPPERS
                    and node.args
                    and _is_set_construct(node.args[0])
                ):
                    yield self._finding(src, node.args[0], f"{func.id}()")
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and node.args
                    and _is_set_construct(node.args[0])
                ):
                    yield self._finding(src, node.args[0], "str.join()")

    def _finding(self, src: SourceFile, node: ast.AST, context: str) -> Finding:
        return src.finding(
            self.id,
            node,
            f"{context} iterates an unordered set — wrap it in sorted(...) "
            "so downstream order (sample merges, message emission, packs) "
            "is deterministic",
        )
